"""The Fx run-time system: cluster assembly and SPMD execution.

:class:`FxCluster` builds the testbed — simulator, shared Ethernet,
host stacks, PVM, and a promiscuous trace recorder (the paper's dedicated
measurement workstation, which never runs program tasks).

:class:`FxRuntime` executes an :class:`~repro.fx.program.FxProgram` with
P ranks, one task per machine, giving each rank an :class:`FxContext`
with compute/send/recv primitives and the collectives of
:mod:`repro.fx.patterns`.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..capture import PacketTrace, TraceRecorder
from ..des import Event, Simulator, Timeout
from ..faults import FaultInjector, FaultPlan
from ..net import EthernetBus, Nic, SwitchedFabric
from ..netmon import FabricMonitor, QmonConfig
from ..pvm import PvmMessage, Route, VirtualMachine
from ..transport import HostStack
from .compute import WorkModel
from .program import FxProgram

__all__ = ["FxCluster", "FxContext", "FxRuntime", "run_program"]


class FxCluster:
    """A simulated workstation cluster on one shared Ethernet.

    Parameters
    ----------
    n_machines:
        Workstations on the LAN (the paper used nine; one extra passive
        machine runs the packet filter, which here is the bus listener).
    bandwidth_bps:
        LAN bandwidth; 10 Mb/s reproduces the paper's Ethernet.
    seed:
        Master seed; every stochastic component gets a derived stream.
    medium:
        "ethernet" (the paper's shared CSMA/CD bus) or "switched" (a
        full-duplex output-queued switch with optional per-flow QoS
        reservations — the next-generation LAN of the paper's §1).
    keepalive_interval:
        PVM daemon chatter period (0 disables).
    tcp_kwargs:
        Options forwarded to every TCP pipe (window, sndbuf, mss, ...).
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or spec string /
        canonical dict).  Wires the plan's injector into the bus, NICs,
        daemons, and compute model, and enables TCP loss recovery unless
        ``tcp_kwargs`` explicitly overrides ``loss_recovery``.
    sanitize:
        Attach the runtime simulation sanitizer
        (:class:`~repro.simlint.SimSanitizer`) to the cluster's
        simulator; ``None`` defers to the ``REPRO_SANITIZE`` environment
        variable.  Sanitized runs produce byte-identical traces.
    telemetry:
        Attach a :class:`~repro.telemetry.Telemetry` observer to the
        cluster's simulator (``True`` for a private instance, an
        existing instance to share one); ``None`` defers to the
        ``REPRO_TELEMETRY`` environment variable.  Instrumented runs
        produce byte-identical traces.
    qmon:
        Attach observer-only per-port queue monitors to the switched
        fabric (``True`` for defaults, a :class:`~repro.netmon.QmonConfig`
        or kwargs dict to tune windows/thresholds).  Requires
        ``medium="switched"``; monitored runs produce byte-identical
        traces.  The attached :class:`~repro.netmon.FabricMonitor` is
        exposed as ``cluster.qmon``.
    queue:
        Future-event queue for the simulator (name, class, or instance —
        see :func:`repro.des.queues.make_queue`); ``None`` defers to the
        ``REPRO_QUEUE`` environment variable and the calendar-queue
        default.  All queues pop in the same ``(time, seq)`` order, so
        the choice never changes a trace.
    """

    def __init__(
        self,
        n_machines: int = 5,
        bandwidth_bps: float = 10e6,
        seed: int = 0,
        medium: str = "ethernet",
        keepalive_interval: float = 0.0,
        tcp_kwargs: Optional[dict] = None,
        faults=None,
        sanitize: Optional[bool] = None,
        telemetry=None,
        queue=None,
        qmon=None,
    ):
        if n_machines < 2:
            raise ValueError("a cluster needs at least 2 machines")
        self.seed = seed
        self.sim = Simulator(sanitize=sanitize, telemetry=telemetry, queue=queue)
        self.faults: Optional[FaultPlan] = FaultPlan.coerce(faults)
        self.fault_injector: Optional[FaultInjector] = None
        if self.faults is not None:
            if medium != "ethernet":
                raise ValueError(
                    "fault injection currently targets the shared-Ethernet "
                    f"medium, not {medium!r}"
                )
            self.fault_injector = FaultInjector(self.faults)
            tcp_kwargs = dict(tcp_kwargs or {})
            tcp_kwargs.setdefault("loss_recovery", True)
        if medium == "ethernet":
            self.bus = EthernetBus(
                self.sim, bandwidth_bps=bandwidth_bps, seed=seed,
                max_attempts=(self.faults.max_attempts
                              if self.faults is not None else None),
                fault_injector=self.fault_injector,
            )
        elif medium == "switched":
            self.bus = SwitchedFabric(self.sim, link_bps=bandwidth_bps, seed=seed)
        else:
            raise ValueError(f"unknown medium {medium!r}")
        self.qmon = None
        qmon_config = QmonConfig.coerce(qmon)
        if qmon_config is not None:
            if medium != "switched":
                raise ValueError(
                    "queue monitors observe the switched fabric; "
                    f"medium {medium!r} has no output-port queues"
                )
            self.qmon = self.bus.attach_monitor(FabricMonitor(qmon_config))
        queue_limit = (self.faults.nic_queue_limit
                       if self.faults is not None else None)
        self.stacks: List[HostStack] = [
            HostStack(
                self.sim,
                Nic(self.sim, self.bus, i, queue_limit=queue_limit),
                i, name=f"alpha{i}",
            )
            for i in range(n_machines)
        ]
        self.recorder = TraceRecorder(self.bus)
        self.vm = VirtualMachine(
            self.sim,
            self.stacks,
            keepalive_interval=keepalive_interval,
            tcp_kwargs=tcp_kwargs,
            fault_injector=self.fault_injector,
        )

    def trace(self) -> PacketTrace:
        return self.recorder.trace()

    def drop_events(self) -> List:
        """All frames the network destroyed, in time order."""
        return list(getattr(self.bus, "drop_log", ()))

    def fault_report(self) -> dict:
        """Counters for the run summary: drops by reason, retransmission
        traffic, daemon drops, and keepalive gaps."""
        drops: dict = {}
        for event in self.drop_events():
            drops[event.reason] = drops.get(event.reason, 0) + 1
        pipes = [p for conn in self.vm._connections.values()
                 for p in (conn.forward, conn.reverse)]
        gaps = [gap for m in self.vm.machines
                for gap in getattr(m.daemon, "keepalive_gaps", ())]
        return {
            "faults": self.faults.describe() if self.faults else None,
            "drops": drops,
            "frames_dropped": sum(drops.values()),
            "retransmitted_segments": sum(p.retransmits for p in pipes),
            "retransmitted_bytes": sum(p.bytes_retransmitted for p in pipes),
            "rto_timeouts": sum(p.timeouts for p in pipes),
            "fast_retransmits": sum(p.fast_retransmits for p in pipes),
            "daemon_drops": sum(
                getattr(m.daemon, "drops", 0) for m in self.vm.machines
            ),
            "keepalive_gaps": len(gaps),
        }


class FxContext:
    """The per-rank view of the runtime inside an SPMD body."""

    def __init__(self, runtime: "FxRuntime", rank: int, task, work_model: WorkModel):
        self.runtime = runtime
        self.rank = rank
        self.task = task
        self.work_model = work_model
        self.sim = runtime.sim

    @property
    def nprocs(self) -> int:
        return self.runtime.nprocs

    # -- local computation ------------------------------------------------
    def compute(self, work: float) -> float:
        """A compute phase of ``work`` units; yield the returned delay.

        The return value is a bare delay consumed by the DES sleep
        protocol — yielding it schedules the rank's resume in exactly
        the slot a ``Timeout`` would occupy, without the allocation.
        The phase's (rank, start, end) is appended to the runtime's
        :attr:`FxRuntime.phase_log` — ground truth for validating the
        burst/idle structure recovered from packet traces.
        """
        sim = self.sim
        now = sim._now
        duration = self.work_model.duration(work, now=now)
        if duration > 0:
            self.runtime.phase_log.append((self.rank, now, now + duration))
        tel = sim.telemetry
        if tel is not None:
            tel.count("fx.compute_phases")
            tel.complete("compute", "fx.program", f"rank{self.rank}",
                         now, now + duration, rank=self.rank, work=work)
        return duration

    # -- point-to-point ---------------------------------------------------
    def send(self, dst_rank: int, nbytes: int, tag: int = 0,
             obj=None, fragments: int = 1):
        """Send ``nbytes`` to ``dst_rank``; returns a generator to
        ``yield from`` (a plain call, so the per-yield delegation chain
        stays one frame shallower than a wrapper generator would be).

        ``fragments > 1`` packs the payload as that many PVM fragments
        (T2DFFT's multi-pack behaviour); otherwise the message is a
        single fragment, as produced by the other kernels' copy loops.
        """
        if not 0 <= dst_rank < self.nprocs:
            raise ValueError(f"bad destination rank {dst_rank}")
        if dst_rank == self.rank:
            raise ValueError("send to self")
        if fragments < 1:
            raise ValueError(f"fragments must be >= 1, got {fragments}")
        msg = PvmMessage(tag=tag, obj=obj)
        if fragments == 1:
            msg.pack(nbytes)
        else:
            base, extra = divmod(nbytes, fragments)
            for i in range(fragments):
                msg.pack(base + (1 if i < extra else 0))
        return self.runtime.vm.send(
            self.task, self.runtime.tasks[dst_rank], msg, route=self.runtime.route
        )

    def recv(self, src_rank: Optional[int] = None, tag: Optional[int] = None) -> Event:
        """Event that fires with the next matching message."""
        source = None
        if src_rank is not None:
            if not 0 <= src_rank < self.nprocs:
                raise ValueError(f"bad source rank {src_rank}")
            source = self.runtime.tasks[src_rank].tid
        return self.task.recv(source=source, tag=tag)

    # -- out-of-band barrier (no traffic; used for structuring only) -------
    def barrier(self) -> Event:
        return self.runtime._barrier_arrive(self.rank)


class FxRuntime:
    """Executes one SPMD program over a cluster.

    Parameters
    ----------
    machines:
        Optional rank -> machine-index map, for co-running several
        programs on one LAN (each runtime on its own machines, all
        sharing the Ethernet).  Defaults to ranks 0..nprocs-1.
    """

    def __init__(
        self,
        cluster: FxCluster,
        nprocs: int,
        work_model: WorkModel,
        route: Route = Route.DIRECT,
        machines: Optional[List[int]] = None,
    ):
        if machines is None:
            machines = list(range(nprocs))
        if len(machines) != nprocs:
            raise ValueError(
                f"machines map has {len(machines)} entries for {nprocs} ranks"
            )
        if any(m >= len(cluster.stacks) or m < 0 for m in machines):
            raise ValueError(
                f"machine indices {machines} out of range for "
                f"{len(cluster.stacks)} machines"
            )
        if len(set(machines)) != nprocs:
            raise ValueError(f"duplicate machine assignment: {machines}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.vm = cluster.vm
        self.nprocs = nprocs
        self.route = route
        self.machines = machines
        self.tasks = [
            self.vm.spawn(machines[r], name=f"rank{r}") for r in range(nprocs)
        ]
        #: Ground-truth compute phases: (rank, start, end) per ctx.compute.
        self.phase_log: List[tuple] = []
        self.contexts = [
            FxContext(self, r, self.tasks[r], work_model.clone(cluster.seed * 1000 + r))
            for r in range(nprocs)
        ]
        injector = getattr(cluster, "fault_injector", None)
        if injector is not None and injector.plan.stalls:
            for rank, ctx in enumerate(self.contexts):
                host = machines[rank]
                ctx.work_model.stall_fn = (
                    lambda now, _h=host: injector.stall_factor(_h, now)
                )
        self._barrier_waiters: List[Event] = []

    def _barrier_arrive(self, rank: int) -> Event:
        ev = Event(self.sim)
        self._barrier_waiters.append(ev)
        if len(self._barrier_waiters) == self.nprocs:
            waiters, self._barrier_waiters = self._barrier_waiters, []
            for w in waiters:
                w.succeed()
        return ev

    def launch(self, program: FxProgram, iterations: int) -> List:
        """Start all rank processes; returns the process handles."""
        tel = self.sim.telemetry
        procs = []
        for ctx in self.contexts:
            proc = self.sim.process(
                program.run(ctx, iterations), name=f"{program.name}-rank{ctx.rank}"
            )
            if tel is not None:
                span = tel.begin(f"{program.name}-rank{ctx.rank}", "fx.program",
                                 f"rank{ctx.rank}", self.sim.now,
                                 rank=ctx.rank, iterations=iterations)
                proc.callbacks.append(
                    lambda _ev, _s=span: tel.end(_s, self.sim.now)
                )
            procs.append(proc)
        return procs

    def execute(self, program: FxProgram, iterations: int) -> PacketTrace:
        """Run the program to completion and return the captured trace."""
        tel = self.sim.telemetry
        run_span = None
        if tel is not None:
            run_span = tel.begin(
                f"run {program.name}", "harness.runner", "run",
                self.sim.now, root=True,
                program=program.name, nprocs=self.nprocs,
                iterations=iterations, seed=self.cluster.seed,
            )
        procs = self.launch(program, iterations)
        self.sim.run(until=self.sim.all_of(procs))
        if self.sim.sanitizer is not None:
            # End-of-run conservation: NicStats vs. the bus drop log.
            self.sim.sanitizer.verify_end_of_run()
        if run_span is not None:
            tel.end(run_span, self.sim.now)
            tel.gauge("run.sim_seconds", self.sim.now)
        return self.cluster.trace()


def run_program(
    program: FxProgram,
    nprocs: int = 4,
    iterations: int = 10,
    work_model: Optional[WorkModel] = None,
    seed: int = 0,
    n_machines: Optional[int] = None,
    route: Route = Route.DIRECT,
    keepalive_interval: float = 0.0,
    tcp_kwargs: Optional[dict] = None,
) -> PacketTrace:
    """One-call convenience: build a cluster, run, return the trace."""
    cluster = FxCluster(
        n_machines=n_machines if n_machines is not None else nprocs + 1,
        seed=seed,
        keepalive_interval=keepalive_interval,
        tcp_kwargs=tcp_kwargs,
    )
    if work_model is None:
        work_model = WorkModel(rate=1e6, rng=random.Random(seed))
    runtime = FxRuntime(cluster, nprocs, work_model, route=route)
    return runtime.execute(program, iterations)
