"""Machine compute model: work units to simulated seconds.

Stands in for the paper's 133 MHz Alpha 21064 workstations.  Each program
is calibrated with a work *rate* (abstract operations per second — the
per-op cost differs between a stencil update and an FFT butterfly) plus
two noise terms:

* small multiplicative jitter on every compute phase (cache effects,
  memory system), and
* occasional *descheduling* — the OS preempting the user process, which
  the paper singles out as the cause of merged communication bursts in
  the 2DFFT trace ("some processor descheduled the program").  The
  probability of a deschedule is proportional to the phase's duration
  (a Poisson process in compute time), so a kernel making thousands of
  microsecond-scale compute calls is not penalized per call.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

__all__ = ["WorkModel"]


class WorkModel:
    """Converts abstract work units into compute-phase durations.

    Parameters
    ----------
    rate:
        Work units per second.
    jitter:
        Relative standard deviation of multiplicative Gaussian noise.
    deschedule_rate:
        Expected OS deschedulings per second of compute.
    deschedule_mean:
        Mean of the exponential extra delay when descheduled.
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible runs.
    """

    def __init__(
        self,
        rate: float,
        jitter: float = 0.01,
        deschedule_rate: float = 0.0,
        deschedule_mean: float = 0.1,
        rng: Optional[random.Random] = None,
    ):
        if rate <= 0:
            raise ValueError(f"work rate must be positive, got {rate}")
        if jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        if deschedule_rate < 0:
            raise ValueError(f"negative deschedule_rate: {deschedule_rate}")
        self.rate = float(rate)
        self.jitter = jitter
        self.deschedule_rate = deschedule_rate
        self.deschedule_mean = deschedule_mean
        self.rng = rng if rng is not None else random.Random(0)
        self.deschedules = 0
        #: Optional fault hook: maps a start time to a slowdown
        #: multiplier (see :class:`repro.faults.FaultInjector`).  The
        #: runtime installs one per rank when a plan has stall windows.
        self.stall_fn: Optional[Callable[[float], float]] = None
        self.stalled_phases = 0

    def duration(self, work: float, now: Optional[float] = None) -> float:
        """Seconds to complete ``work`` units, noise included.

        ``now`` (the phase's simulated start time) only matters when a
        fault plan installed :attr:`stall_fn`: phases starting inside a
        stall window run that window's factor slower.
        """
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if work == 0:
            return 0.0
        base = work / self.rate
        if self.jitter > 0:
            base *= max(0.0, 1.0 + self.rng.gauss(0.0, self.jitter))
        if self.deschedule_rate > 0:
            prob = -math.expm1(-self.deschedule_rate * base)
            if self.rng.random() < prob:
                self.deschedules += 1
                base += self.rng.expovariate(1.0 / self.deschedule_mean)
        if self.stall_fn is not None and now is not None:
            factor = self.stall_fn(now)
            if factor != 1.0:
                self.stalled_phases += 1
                base *= factor
        return base

    def clone(self, seed: int) -> "WorkModel":
        """An identically-parameterized model with its own RNG stream."""
        return WorkModel(
            rate=self.rate,
            jitter=self.jitter,
            deschedule_rate=self.deschedule_rate,
            deschedule_mean=self.deschedule_mean,
            rng=random.Random(seed),
        )
