"""Distributed arrays and communication derivation: the compiler's job.

Fx "parallelizes dense matrix codes based on parallel array assignment
statements" (paper §2): the programmer writes array operations over
distributed arrays, and the *compiler* derives which processors must
exchange which bytes.  This module is that derivation, reduced to its
essence: 2-D arrays block-distributed along one axis, and the four
assignment forms behind the measured kernels:

=====================  ==================  =========================
array statement        derived pattern      measured kernel
=====================  ==================  =========================
halo/stencil access    neighbor             SOR
redistribution         all-to-all           2DFFT, AIRSHED transposes
gather / element feed  broadcast / collect  SEQ
reduction              tree                 HIST
=====================  ==================  =========================

A derived :class:`CommPlan` both *describes* the communication (pattern,
message size, pairs — feeding the QoS characterization) and *executes*
it inside an SPMD rank body, so a program written against distributed
arrays produces exactly the traffic of the hand-coded kernels (tested in
``tests/test_fx_arrays.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from . import patterns as _patterns
from .patterns import Pattern

__all__ = [
    "Axis",
    "DistributedArray",
    "CommPlan",
    "halo_exchange_plan",
    "redistribute_plan",
    "gather_plan",
    "broadcast_plan",
    "reduce_plan",
]


class Axis(enum.IntEnum):
    """Distribution axis of a 2-D array."""

    ROWS = 0
    COLS = 1


@dataclass(frozen=True)
class DistributedArray:
    """A dense 2-D array block-distributed over P processors.

    Parameters
    ----------
    rows, cols:
        Global extents.
    element_bytes:
        Bytes per element.
    dist:
        The distributed axis: rows (processor p owns rows
        ``p*rows/P .. (p+1)*rows/P``) or columns.
    nprocs:
        P; must divide the distributed extent.
    """

    rows: int
    cols: int
    element_bytes: int
    dist: Axis
    nprocs: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"bad extents {self.rows}x{self.cols}")
        if self.element_bytes < 1:
            raise ValueError(f"bad element size {self.element_bytes}")
        if self.nprocs < 2:
            raise ValueError(f"need at least 2 processors, got {self.nprocs}")
        extent = self.rows if self.dist == Axis.ROWS else self.cols
        if extent % self.nprocs != 0:
            raise ValueError(
                f"distributed extent {extent} not divisible by P={self.nprocs}"
            )

    @property
    def local_rows(self) -> int:
        return self.rows // self.nprocs if self.dist == Axis.ROWS else self.rows

    @property
    def local_cols(self) -> int:
        return self.cols // self.nprocs if self.dist == Axis.COLS else self.cols

    @property
    def local_elements(self) -> int:
        return self.local_rows * self.local_cols

    @property
    def local_bytes(self) -> int:
        return self.local_elements * self.element_bytes

    @property
    def global_elements(self) -> int:
        return self.rows * self.cols

    def redistributed(self, new_dist: Axis) -> "DistributedArray":
        """The same array distributed along the other axis."""
        return DistributedArray(
            self.rows, self.cols, self.element_bytes, new_dist, self.nprocs
        )


@dataclass(frozen=True)
class CommPlan:
    """A derived communication phase.

    ``message_bytes`` is the per-connection message; ``pairs`` the
    simplex connections used — together the ``b()`` and ``c`` of the
    paper's QoS characterization, straight from the compiler.
    """

    pattern: Pattern
    message_bytes: int
    nprocs: int
    description: str = ""

    @property
    def pairs(self) -> Set[Tuple[int, int]]:
        return _patterns.pattern_pairs(self.pattern, self.nprocs)

    @property
    def total_bytes(self) -> int:
        """Bytes moved LAN-wide by one execution of the phase."""
        return self.message_bytes * len(self.pairs)

    def execute(self, ctx, tag: int = 0):
        """Perform the phase inside an SPMD rank body (a generator)."""
        if self.pattern is Pattern.NEIGHBOR:
            yield from _patterns.neighbor_exchange(ctx, self.message_bytes, tag)
        elif self.pattern is Pattern.ALL_TO_ALL:
            yield from _patterns.all_to_all(ctx, self.message_bytes, tag)
        elif self.pattern is Pattern.BROADCAST:
            yield from _patterns.broadcast(ctx, 0, self.message_bytes, tag)
        elif self.pattern is Pattern.TREE:
            yield from _patterns.tree_reduce(ctx, self.message_bytes, tag)
            yield from _patterns.tree_broadcast(ctx, self.message_bytes, tag)
        elif self.pattern is Pattern.PARTITION:
            half = ctx.nprocs // 2
            if ctx.rank < half:
                yield from _patterns.partition_send(ctx, self.message_bytes, tag)
            else:
                yield from _patterns.partition_recv(ctx, tag)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown pattern {self.pattern!r}")

    def __repr__(self):  # pragma: no cover - cosmetic
        return (
            f"<CommPlan {self.pattern} {self.message_bytes}B x "
            f"{len(self.pairs)} connections: {self.description}>"
        )


# ---------------------------------------------------------------------------
# derivations: array statement -> communication
# ---------------------------------------------------------------------------

def halo_exchange_plan(array: DistributedArray, halo: int = 1) -> CommPlan:
    """Stencil access across the distributed axis (SOR's rows).

    ``a[i, j] = f(a[i-1, j], a[i+1, j], ...)`` with a row-block
    distribution needs each processor's boundary rows at its
    neighbours: a *neighbor* exchange of ``halo`` rows (or columns).
    """
    if halo < 1:
        raise ValueError(f"halo must be >= 1, got {halo}")
    if array.dist == Axis.ROWS:
        if halo > array.local_rows:
            raise ValueError("halo exceeds the local block")
        nbytes = halo * array.cols * array.element_bytes
    else:
        if halo > array.local_cols:
            raise ValueError("halo exceeds the local block")
        nbytes = halo * array.rows * array.element_bytes
    return CommPlan(
        Pattern.NEIGHBOR, nbytes, array.nprocs,
        description=f"halo={halo} stencil on {array.dist.name.lower()}-block",
    )


def redistribute_plan(array: DistributedArray, new_dist: Axis) -> CommPlan:
    """Change of distribution axis (2DFFT's transpose, AIRSHED's).

    Row-block to column-block: processor p keeps the intersection of its
    row block with its new column block and sends each other processor
    an (rows/P) x (cols/P) sub-block — the paper's O((N/P)^2) message on
    all P(P-1) connections.
    """
    if new_dist == array.dist:
        raise ValueError("array already distributed along that axis")
    P = array.nprocs
    other_extent = array.cols if array.dist == Axis.ROWS else array.rows
    if other_extent % P != 0:
        raise ValueError(
            f"target extent {other_extent} not divisible by P={P}"
        )
    block_elements = (array.rows // P) * (array.cols // P) \
        if array.dist == Axis.ROWS else (array.cols // P) * (array.rows // P)
    nbytes = block_elements * array.element_bytes
    return CommPlan(
        Pattern.ALL_TO_ALL, nbytes, P,
        description=f"redistribute {array.dist.name} -> {new_dist.name}",
    )


def gather_plan(array: DistributedArray) -> CommPlan:
    """Gather the whole array at processor 0 (sequential output).

    Every processor sends its local block to the root; the root's
    connections carry the traffic (modelled with the broadcast pattern's
    pair structure reversed — we use BROADCAST whose executable form is
    root-centric; the byte volume is each sender's local block).
    """
    return CommPlan(
        Pattern.BROADCAST, array.local_bytes, array.nprocs,
        description="gather local blocks at processor 0",
    )


def broadcast_plan(array: DistributedArray,
                   element_wise: bool = False) -> CommPlan:
    """Feed data from processor 0 to all (sequential input, SEQ).

    ``element_wise=True`` models Fx's naive sequential-I/O lowering —
    one message *per element* to every processor (the paper's SEQ);
    otherwise one block-sized message per destination.
    """
    nbytes = array.element_bytes if element_wise else array.local_bytes
    return CommPlan(
        Pattern.BROADCAST, nbytes, array.nprocs,
        description=(
            "element-wise sequential input" if element_wise
            else "block broadcast from processor 0"
        ),
    )


def reduce_plan(array: DistributedArray, result_bytes: int) -> CommPlan:
    """Reduction of a local result vector to processor 0 and back (HIST).

    The reduced value (e.g. a histogram of ``result_bytes``) moves up a
    binary tree and the final result is broadcast.
    """
    if result_bytes < 1:
        raise ValueError(f"result_bytes must be >= 1, got {result_bytes}")
    return CommPlan(
        Pattern.TREE, result_bytes, array.nprocs,
        description=f"tree reduction of {result_bytes}B vector",
    )
