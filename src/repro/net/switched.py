"""A switched full-duplex LAN with per-flow bandwidth reservations.

The paper's motivation (§1): "next generation LANs, such as ATM, will
supply quality of service guarantees for connections.  Parallel programs
may be able to benefit from such guarantees."  This substrate is that
next-generation LAN: every station has a dedicated full-duplex link to
one output-queued switch, and (src, dst) flows may *reserve* bandwidth —
reserved traffic is served with strict priority, policed by a token
bucket, so a program with reservations keeps its burst bandwidth no
matter the cross traffic.

The class implements the same interface as
:class:`~repro.net.medium.EthernetBus` (``attach`` / ``add_listener`` /
``transmit`` / ``stats``), so :class:`~repro.net.nic.Nic`, the trace
recorder, and the whole Fx stack run over it unchanged — pass
``medium="switched"`` to :class:`~repro.fx.runtime.FxCluster`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..des import Simulator, Store
from .frame import BROADCAST, EthernetFrame
from .medium import BusStats, DropEvent

__all__ = ["SwitchedFabric", "Reservation"]


@dataclass
class Reservation:
    """A token-bucket bandwidth guarantee for one (src, dst) flow."""

    src: int
    dst: int
    rate_bps: float
    bucket_bytes: int
    tokens: float = 0.0
    last_update: float = 0.0

    #: Byte tolerance absorbing float rounding in the refill arithmetic
    #: (without it a frame can starve forever a hair short of its cost).
    _EPS = 1e-6

    def refill(self, now: float) -> None:
        self.tokens = min(
            float(self.bucket_bytes),
            self.tokens + (now - self.last_update) * self.rate_bps / 8.0,
        )
        self.last_update = now

    def eligible(self, now: float, nbytes: int) -> bool:
        self.refill(now)
        return self.tokens >= nbytes - self._EPS

    def consume(self, nbytes: int) -> None:
        self.tokens -= nbytes

    def time_until(self, nbytes: int) -> float:
        """Seconds until ``nbytes`` worth of tokens will be available."""
        deficit = nbytes - self.tokens
        if deficit <= self._EPS:
            return 0.0
        return deficit * 8.0 / self.rate_bps


class _OutputPort:
    """One station's downlink: strict priority to reserved flows."""

    def __init__(self, fabric: "SwitchedFabric", station_id: int):
        self.fabric = fabric
        self.station_id = station_id
        self.reserved: Deque[Tuple[EthernetFrame, Reservation]] = deque()
        self.best_effort: Deque[EthernetFrame] = deque()
        self._wakeup = None
        self.queued_bytes = 0
        fabric.sim.process(self._drain(), name=f"port{station_id}")

    def enqueue(self, frame: EthernetFrame) -> None:
        res = self.fabric._reservations.get((frame.src, frame.dst))
        if res is not None:
            self.reserved.append((frame, res))
        else:
            self.best_effort.append(frame)
        self.queued_bytes += frame.size
        mon = self.fabric.monitor
        if mon is not None:
            mon.on_enqueue(self.station_id, frame, self.fabric.sim.now)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _drain(self):
        sim = self.fabric.sim
        link_bps = self.fabric.link_bps
        while True:
            if not self.reserved and not self.best_effort:
                self._wakeup = sim.event()
                yield self._wakeup
                continue
            frame: Optional[EthernetFrame] = None
            # Strict priority: an *eligible* reserved frame goes first.
            if self.reserved:
                head, res = self.reserved[0]
                if res.eligible(sim.now, head.size):
                    res.consume(head.size)
                    frame = head
                    self.reserved.popleft()
                elif not self.best_effort:
                    # nothing else to send: wait for tokens
                    wait = res.time_until(head.size)
                    mon = self.fabric.monitor
                    if mon is not None:
                        mon.on_token_wait(self.station_id, head, sim.now, wait)
                    yield sim.timeout(wait)
                    continue
            if frame is None and self.best_effort:
                frame = self.best_effort.popleft()
            if frame is None:  # pragma: no cover - defensive
                continue
            tx = frame.wire_bits / link_bps
            mon = self.fabric.monitor
            if mon is not None:
                mon.on_service_start(self.station_id, frame, sim.now, tx)
            tel = sim.telemetry
            span = None
            if tel is not None:
                span = tel.begin(f"downlink {frame.size}B", "net.switched",
                                 f"port{self.station_id}", sim.now,
                                 src=frame.src, dst=frame.dst)
            yield sim.timeout(tx)
            self.queued_bytes -= frame.size
            self.fabric.stats.busy_time += tx
            self.fabric._deliver(frame, self.station_id)
            mon = self.fabric.monitor
            if mon is not None:
                mon.on_delivered(self.station_id, frame, sim.now)
            if span is not None:
                tel.end(span, sim.now)


class SwitchedFabric:
    """An output-queued switch with dedicated full-duplex links.

    Parameters
    ----------
    link_bps:
        Per-link bandwidth, both directions (10 Mb/s by default so the
        shared-vs-switched comparison is apples to apples).
    switch_latency:
        Fixed store-and-forward latency added between uplink and the
        output queue.
    """

    def __init__(
        self,
        sim: Simulator,
        link_bps: float = 10e6,
        switch_latency: float = 10e-6,
        seed: int = 0,
    ):
        self.sim = sim
        self.link_bps = float(link_bps)
        self.switch_latency = switch_latency
        self.stats = BusStats()
        self.drop_log: List[DropEvent] = []
        self._stations: Dict[int, Callable[[EthernetFrame, float], None]] = {}
        self._listeners: List[Callable[[EthernetFrame, float], None]] = []
        self._ports: Dict[int, _OutputPort] = {}
        self._reservations: Dict[Tuple[int, int], Reservation] = {}
        # Optional observer-only queue monitor (repro.netmon.FabricMonitor).
        self.monitor = None

    def attach_monitor(self, monitor):
        """Attach a pure-observer queue monitor before the run starts."""
        if self.monitor is not None:
            raise ValueError("a queue monitor is already attached")
        self.monitor = monitor.attach(self)
        return self.monitor

    def record_drop(self, reason: str, frame: EthernetFrame) -> None:
        """Log a destroyed frame (same contract as the shared bus)."""
        self.drop_log.append(
            DropEvent(time=self.sim.now, reason=reason,
                      src=frame.src, dst=frame.dst, size=frame.size)
        )
        tel = self.sim.telemetry
        if tel is not None:
            tel.count("net.frames_dropped")
            tel.count(f"drops.{reason}")
        if self.monitor is not None:
            self.monitor.on_drop(frame, reason, self.sim.now)

    # -- interface shared with EthernetBus ---------------------------------
    @property
    def bandwidth_bps(self) -> float:
        return self.link_bps

    @property
    def capacity_bytes_per_s(self) -> float:
        return self.link_bps / 8.0

    def attach(self, station_id: int, rx: Callable[[EthernetFrame, float], None]):
        if station_id in self._stations:
            raise ValueError(f"station id {station_id} already attached")
        self._stations[station_id] = rx
        self._ports[station_id] = _OutputPort(self, station_id)

    def add_listener(self, listener: Callable[[EthernetFrame, float], None]):
        self._listeners.append(listener)

    def tx_time(self, frame: EthernetFrame) -> float:
        return frame.wire_bits / self.link_bps

    def transmit(self, frame: EthernetFrame):
        """Uplink transmission, then switch to the output port(s).

        A generator with the same contract as ``EthernetBus.transmit``;
        the calling NIC serializes its own uplink.
        """
        sim = self.sim
        tel = sim.telemetry
        span = None
        if tel is not None:
            tel.count("bus.frames_offered")
            span = tel.begin(f"uplink {frame.size}B", "net.switched",
                             f"nic{frame.src}", sim.now,
                             src=frame.src, dst=frame.dst, size=frame.size)
        yield sim.timeout(self.tx_time(frame))
        yield sim.timeout(self.switch_latency)
        if span is not None:
            tel.end(span, sim.now)
        if frame.dst == BROADCAST:
            for sid, port in self._ports.items():
                if sid != frame.src:
                    port.enqueue(frame)
        else:
            port = self._ports.get(frame.dst)
            if port is None:
                self.stats.frames_dropped += 1
                self.record_drop("no-port", frame)
                return False
            port.enqueue(frame)
        return True

    # -- QoS ---------------------------------------------------------------
    def reserve(self, src: int, dst: int, rate_bps: float,
                bucket_bytes: int = 64 * 1024) -> Reservation:
        """Guarantee ``rate_bps`` to the (src, dst) flow.

        The flow's frames take strict priority on dst's downlink, policed
        by a token bucket so it cannot starve best-effort traffic beyond
        its reservation.
        """
        if rate_bps <= 0 or rate_bps > self.link_bps:
            raise ValueError(
                f"rate {rate_bps} outside (0, {self.link_bps}]"
            )
        if bucket_bytes < 2048:
            raise ValueError("bucket must hold at least one frame burst")
        key = (src, dst)
        if key in self._reservations:
            raise ValueError(f"flow {key} already reserved")
        existing = sum(
            r.rate_bps for (s, d), r in self._reservations.items() if d == dst
        )
        if existing + rate_bps > self.link_bps:
            raise ValueError(
                f"reservations on port {dst} would exceed the link"
            )
        res = Reservation(src, dst, rate_bps, bucket_bytes,
                          tokens=float(bucket_bytes),
                          last_update=self.sim.now)
        self._reservations[key] = res
        return res

    def release_reservation(self, src: int, dst: int) -> None:
        if (src, dst) not in self._reservations:
            raise KeyError(f"no reservation for flow ({src}, {dst})")
        del self._reservations[(src, dst)]

    # -- delivery ------------------------------------------------------------
    def _deliver(self, frame: EthernetFrame, dst_station: int) -> None:
        """Hand a frame leaving ``dst_station``'s port to that station."""
        now = self.sim.now
        self.stats.frames_delivered += 1
        self.stats.bytes_delivered += frame.size
        tel = self.sim.telemetry
        if tel is not None:
            tel.count("bus.frames_delivered")
            tel.count("bus.bytes_delivered", frame.size)
        for listener in self._listeners:
            listener(frame, now)
        rx = self._stations.get(dst_station)
        if rx is not None and dst_station != frame.src:
            rx(frame, now)
