"""Network interface: a FIFO transmit queue in front of the shared bus.

Each station owns one NIC.  Outbound frames queue in order; a single
transmit process drains the queue through the bus's CSMA/CD procedure, so
a station never has two frames in flight — exactly the discipline of the
paper's single built-in Ethernet adaptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..des import Event, Simulator, Store
from .frame import EthernetFrame
from .medium import EthernetBus

__all__ = ["Nic", "NicStats"]


@dataclass
class NicStats:
    frames_sent: int = 0
    frames_received: int = 0
    frames_dropped: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    max_queue_depth: int = 0


class Nic:
    """One station's interface to the bus.

    Parameters
    ----------
    sim:
        Driving simulator.
    bus:
        The shared Ethernet.
    station_id:
        This station's address on the bus.
    queue_limit:
        Finite transmit-queue depth; a send arriving while the queue
        holds this many frames is dropped at the adapter (counted in
        ``stats.frames_dropped`` and the medium's drop log).  ``None``
        (the default) queues without bound.
    """

    def __init__(self, sim: Simulator, bus: EthernetBus, station_id: int,
                 queue_limit: Optional[int] = None):
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.sim = sim
        self.bus = bus
        self.station_id = station_id
        self.queue_limit = queue_limit
        self.stats = NicStats()
        self._queue: Store = Store(sim)
        self._rx_handler: Optional[Callable[[EthernetFrame, float], None]] = None
        bus.attach(station_id, self._on_rx)
        if sim.sanitizer is not None:
            sim.sanitizer.register_nic(self)
        self._tx_proc = sim.process(self._tx_loop(), name=f"nic{station_id}-tx")

    # -- transmit --------------------------------------------------------
    def send(self, frame: EthernetFrame):
        """Queue a frame for transmission (returns immediately).

        Returns an event that fires once the frame has left the wire
        (value True) or was dropped after too many collisions (False).
        Callers that need wire-pacing — e.g. a TCP sender cutting
        segments from its stream — wait on it; fire-and-forget callers
        ignore it.
        """
        if frame.src != self.station_id:
            raise ValueError(
                f"frame src {frame.src} does not match station {self.station_id}"
            )
        queue = self._queue
        done = Event(self.sim)
        if (self.queue_limit is not None
                and len(queue) >= self.queue_limit):
            self.stats.frames_dropped += 1
            record = getattr(self.bus, "record_drop", None)
            if record is not None:
                record("queue-overflow", frame)
            done.succeed(False)
            return done
        queue.put((frame, done))
        depth = len(queue)
        stats = self.stats
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        tel = self.sim.telemetry
        if tel is not None:
            tel.count("nic.frames_queued")
            tel.gauge_max("nic.max_queue_depth", depth)
        return done

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _tx_loop(self):
        # Per-frame hot loop: the observer handles and collaborators are
        # fixed for the simulator's lifetime, so bind them once.
        get = self._queue.get
        transmit = self.bus.transmit
        stats = self.stats
        tel = self.sim.telemetry
        while True:
            frame, done = yield get()
            delivered = yield from transmit(frame)
            if delivered:
                stats.frames_sent += 1
                stats.bytes_sent += frame.size
                if tel is not None:
                    tel.count("nic.frames_sent")
                    tel.count("nic.bytes_sent", frame.size)
            else:
                stats.frames_dropped += 1
            done.succeed(delivered)

    # -- receive ---------------------------------------------------------
    def set_rx_handler(self, handler: Callable[[EthernetFrame, float], None]):
        """Install the upper-layer (IP stack) receive callback."""
        self._rx_handler = handler

    def _on_rx(self, frame: EthernetFrame, now: float) -> None:
        self.stats.frames_received += 1
        self.stats.bytes_received += frame.size
        if self._rx_handler is not None:
            self._rx_handler(frame, now)
