"""Simulated shared-Ethernet LAN: frames, CSMA/CD bus, and NICs.

The substrate that stands in for the paper's bridged 10 Mb/s Ethernet of
DEC Alpha workstations (one collision domain, 1.25 MB/s aggregate).
"""

from .frame import (
    BROADCAST,
    ETHERNET_OVERHEAD,
    MAX_MEASURED_SIZE,
    MIN_MEASURED_SIZE,
    EthernetFrame,
)
from .medium import BusStats, DropEvent, EthernetBus
from .switched import Reservation, SwitchedFabric
from .nic import Nic, NicStats

__all__ = [
    "EthernetFrame",
    "EthernetBus",
    "BusStats",
    "DropEvent",
    "SwitchedFabric",
    "Reservation",
    "Nic",
    "NicStats",
    "BROADCAST",
    "ETHERNET_OVERHEAD",
    "MIN_MEASURED_SIZE",
    "MAX_MEASURED_SIZE",
]
