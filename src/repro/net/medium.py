"""A shared-medium CSMA/CD Ethernet bus.

All stations share one collision domain, as on the paper's multi-segment
bridged Ethernet.  The model keeps the three pieces of MAC behaviour that
shape the measured traffic:

* **carrier sense** — a station defers while the medium is busy, which
  serializes the synchronized bursts of SPMD communication phases;
* **collisions** — stations that begin transmitting within one contention
  window of each other collide, jam, and retry;
* **binary exponential backoff** — retry delays randomize, breaking the
  symmetry of simultaneous senders.

The default 10 Mb/s bandwidth gives the paper's 1.25 MB/s aggregate
ceiling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..des import Simulator
from .frame import BROADCAST, EthernetFrame

__all__ = ["EthernetBus", "BusStats", "DropEvent"]


@dataclass(frozen=True)
class DropEvent:
    """One frame that the network destroyed instead of delivering.

    ``reason`` is ``"excess-collisions"``, ``"queue-overflow"``,
    ``"loss"``, or ``"corrupt"``.  Every drop anywhere in the simulated
    network lands in the medium's ``drop_log``, so a trace consumer can
    account for vanished frames alongside the delivered ones.
    """

    time: float
    reason: str
    src: int
    dst: int
    size: int


class _Window:
    """One contention window: stations starting within it collide."""

    __slots__ = ("start", "members", "collided")

    def __init__(self, start: float):
        self.start = start
        self.members = 0
        self.collided = False


@dataclass
class BusStats:
    """Counters accumulated over a simulation run.

    ``busy_time`` counts time the medium carried *signal*: delivered
    frames plus the union of post-collision jam intervals.  The
    inter-frame gap is deliberately excluded — the IFG is enforced
    silence, so counting it would report a saturated medium as >100%
    utilized; ``_busy_until`` still covers it for carrier-sense
    purposes.
    """

    frames_delivered: int = 0
    bytes_delivered: int = 0
    collisions: int = 0
    frames_dropped: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which the medium carried
        frames or jam signal."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class EthernetBus:
    """The shared collision domain.

    Parameters
    ----------
    sim:
        The driving simulator.
    bandwidth_bps:
        Raw medium bandwidth; 10 Mb/s reproduces the paper's LAN.
    slot_time:
        Ethernet slot time (backoff quantum), 51.2 us at 10 Mb/s.
    contention_window:
        Window after a transmission begins during which another station's
        start causes a collision (models propagation delay).
    ifg_time:
        Inter-frame gap, 9.6 us at 10 Mb/s.
    max_attempts:
        Attempts before a frame is dropped.  Real Ethernet gives up
        after 16, and real TCP retransmits; TCP-lite has no
        retransmission, so the default ``None`` retries forever (with
        the backoff exponent capped) and the reliability contract moves
        down to the MAC.  Pass an integer to study drops.
    seed:
        Seed for the backoff RNG — simulations are exactly repeatable.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`; consulted once
        per successfully transmitted frame to decide loss/corruption.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 10e6,
        slot_time: float = 51.2e-6,
        contention_window: float = 25.6e-6,
        ifg_time: float = 9.6e-6,
        jam_time: float = 4.8e-6,
        max_attempts: Optional[int] = None,
        seed: int = 0,
        fault_injector=None,
    ):
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.slot_time = slot_time
        self.contention_window = contention_window
        self.ifg_time = ifg_time
        self.jam_time = jam_time
        self.max_attempts = max_attempts
        self.rng = random.Random(seed)
        self.fault_injector = fault_injector
        self.stats = BusStats()
        #: Every drop anywhere on this network, in time order.
        self.drop_log: List[DropEvent] = []

        self._busy_until: float = 0.0
        self._window: Optional[_Window] = None
        self._stations: Dict[int, Callable[[EthernetFrame, float], None]] = {}
        self._listeners: List[Callable[[EthernetFrame, float], None]] = []
        if sim.sanitizer is not None:
            sim.sanitizer.attach_bus(self)

    # -- wiring --------------------------------------------------------
    def attach(self, station_id: int, rx: Callable[[EthernetFrame, float], None]):
        """Register a station's receive handler."""
        if station_id in self._stations:
            raise ValueError(f"station id {station_id} already attached")
        self._stations[station_id] = rx

    def add_listener(self, listener: Callable[[EthernetFrame, float], None]):
        """Attach a promiscuous listener that sees every delivered frame."""
        self._listeners.append(listener)

    def record_drop(self, reason: str, frame: EthernetFrame) -> None:
        """Log a destroyed frame (callers keep their own counters)."""
        self.drop_log.append(
            DropEvent(time=self.sim.now, reason=reason,
                      src=frame.src, dst=frame.dst, size=frame.size)
        )
        tel = self.sim.telemetry
        if tel is not None:
            tel.count("net.frames_dropped")
            tel.count(f"drops.{reason}")

    @property
    def capacity_bytes_per_s(self) -> float:
        """Aggregate bandwidth in bytes/second (1.25 MB/s at 10 Mb/s)."""
        return self.bandwidth_bps / 8.0

    def tx_time(self, frame: EthernetFrame) -> float:
        """Seconds the frame occupies the medium."""
        return frame.wire_bits / self.bandwidth_bps

    # -- MAC -------------------------------------------------------------
    def transmit(self, frame: EthernetFrame):
        """CSMA/CD transmission; a generator to ``yield from`` in a process.

        Returns True on delivery, False if the frame was dropped after
        ``max_attempts`` collisions.
        """
        sim = self.sim
        tel = sim.telemetry
        san = sim.sanitizer
        span = None
        if tel is not None:
            tel.count("bus.frames_offered")
            span = tel.begin(f"frame {frame.size}B", "net.medium",
                             f"nic{frame.src}", sim._now,
                             src=frame.src, dst=frame.dst, size=frame.size)
        # Hot path: one transmit per frame, several yields each.  Fixed
        # parameters are localized and every wait is a bare-delay sleep
        # (see the DES sleep protocol) — same events at the same
        # instants, none of the Timeout machinery.
        contention_window = self.contention_window
        stats = self.stats
        attempt = 0
        while True:
            # Carrier sense: defer while the medium is busy.  The deadline
            # may extend while we wait, so loop.
            while sim._now < self._busy_until:
                yield self._busy_until - sim._now  # sleep: carrier busy

            # Same-instant gap: the current contention window may have
            # closed with its sole transmitter determined, while the
            # winner's process — whose resume event can be ordered after
            # ours at this timestamp — has not yet raised ``_busy_until``.
            # Sensing "idle" here would let this station contend against
            # (or, worse, transmit over) a frame that is already committed
            # to the wire.  Yield once so the winner resumes first and
            # raises the busy deadline, then re-sense.
            w = self._window
            if (
                w is not None
                and not w.collided
                and sim._now >= w.start + contention_window
            ):
                yield 0.0  # sleep one slot: let the winner re-sense first
                continue

            # Start transmitting: join (or open) the contention window.
            if w is None or sim._now > w.start + contention_window:
                w = _Window(sim._now)
                self._window = w
            w.members += 1
            if w.members > 1 and not w.collided:
                w.collided = True
                stats.collisions += 1
                if tel is not None:
                    tel.count("bus.collisions")

            yield contention_window  # sleep: contention window

            w.members -= 1
            if w.members == 0 and self._window is w:
                self._window = None

            if w.collided:
                # Collision: jam, back off, retry.  Count the jam signal
                # toward busy_time — without it utilization() undercounts
                # exactly when the medium is congested.  Colliding
                # stations' jams overlap, so only the interval this jam
                # extends the deadline by is added (the union, not the
                # sum).
                jam_end = sim._now + self.jam_time
                jam_added = jam_end - max(self._busy_until, sim._now)
                if jam_added > 0:
                    stats.busy_time += jam_added
                self._busy_until = max(self._busy_until, jam_end)
                attempt += 1
                if self.max_attempts is not None and attempt >= self.max_attempts:
                    stats.frames_dropped += 1
                    self.record_drop("excess-collisions", frame)
                    if span is not None:
                        span.args["outcome"] = "excess-collisions"
                        tel.end(span, sim._now)
                    return False
                backoff = self.rng.randrange(0, 1 << min(attempt, 10))
                if tel is not None:
                    tel.count("bus.backoff_rounds")
                yield self.jam_time + backoff * self.slot_time  # sleep: backoff
                continue

            # Sole transmitter: hold the medium for the frame + IFG.
            tx_time = frame.wire_bits / self.bandwidth_bps
            now = sim._now
            if san is not None:
                san.on_bus_transmission(now, now + tx_time)
            busy = now + tx_time + self.ifg_time
            if busy > self._busy_until:
                self._busy_until = busy
            yield tx_time  # sleep: frame on the wire
            stats.busy_time += tx_time
            # Wire faults: a lost or corrupted frame occupied the medium
            # (and counts as sent by the NIC) but is never delivered.
            if self.fault_injector is not None:
                fate = self.fault_injector.frame_fate(frame, sim._now)
                if fate is not None:
                    stats.frames_dropped += 1
                    self.record_drop(fate, frame)
                    if span is not None:
                        span.args["outcome"] = fate
                        span.args["attempts"] = attempt + 1
                        tel.end(span, sim._now)
                    return True
            self._deliver(frame)
            if span is not None:
                span.args["outcome"] = "delivered"
                span.args["attempts"] = attempt + 1
                tel.end(span, sim._now)
            return True

    # -- delivery ---------------------------------------------------------
    def _deliver(self, frame: EthernetFrame) -> None:
        sim = self.sim
        now = sim._now
        stats = self.stats
        stats.frames_delivered += 1
        stats.bytes_delivered += frame.size
        tel = sim.telemetry
        if tel is not None:
            tel.count("bus.frames_delivered")
            tel.count("bus.bytes_delivered", frame.size)
        for listener in self._listeners:
            listener(frame, now)
        if frame.dst == BROADCAST:
            for sid, rx in self._stations.items():
                if sid != frame.src:
                    rx(frame, now)
        else:
            rx = self._stations.get(frame.dst)
            if rx is not None:
                rx(frame, now)
