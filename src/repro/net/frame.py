"""Ethernet frame model and on-wire size accounting.

Two sizes matter for the reproduction:

* ``size`` — the *measured* packet size the paper reports: "data portion,
  TCP or UDP header, IP header, and Ethernet header and trailer".  The
  Ethernet header+trailer is 14 + 4 = 18 bytes, so a bare TCP ACK measures
  18 + 20 + 20 = 58 bytes — exactly the paper's minimum — and a full
  1460-byte TCP segment measures 1518 bytes, the paper's maximum.

* ``wire_bytes`` — what actually occupies the medium: preamble (8 bytes),
  header, payload padded to the 46-byte Ethernet minimum, and FCS.  This
  drives transmission time on the 10 Mb/s bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "EthernetFrame",
    "BROADCAST",
    "ETHERNET_OVERHEAD",
    "ETHERNET_HEADER",
    "ETHERNET_FCS",
    "ETHERNET_PREAMBLE",
    "ETHERNET_MIN_PAYLOAD",
    "ETHERNET_MAX_PAYLOAD",
    "MAX_MEASURED_SIZE",
    "MIN_MEASURED_SIZE",
]

#: Destination id meaning "all stations".
BROADCAST = -1

ETHERNET_HEADER = 14  # dst mac + src mac + ethertype
ETHERNET_FCS = 4
ETHERNET_PREAMBLE = 8  # preamble + SFD, on the wire but never measured
ETHERNET_OVERHEAD = ETHERNET_HEADER + ETHERNET_FCS  # the 18 bytes tcpdump sees
ETHERNET_MIN_PAYLOAD = 46
ETHERNET_MAX_PAYLOAD = 1500

#: Paper's packet-size bounds (Figure 3): 58-byte ACK to 1518-byte full frame.
MIN_MEASURED_SIZE = ETHERNET_OVERHEAD + 40
MAX_MEASURED_SIZE = ETHERNET_OVERHEAD + ETHERNET_MAX_PAYLOAD


@dataclass(slots=True)
class EthernetFrame:
    """One Ethernet frame carrying an IP datagram.

    Parameters
    ----------
    src, dst:
        Station ids (small integers); ``dst`` may be :data:`BROADCAST`.
    payload_size:
        IP datagram length in bytes (IP header included).
    payload:
        The layer-3 object delivered to the receiving stack.

    ``size`` — the measured size in bytes, using the paper's accounting
    — is computed once at construction: every layer that touches a frame
    (NIC stats, bus stats, the capture listener) reads it.
    """

    src: int
    dst: int
    payload_size: int
    payload: Any = None
    size: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        if self.payload_size < 0:
            raise ValueError(f"negative payload size: {self.payload_size}")
        if self.payload_size > ETHERNET_MAX_PAYLOAD:
            raise ValueError(
                f"payload {self.payload_size} exceeds Ethernet maximum "
                f"{ETHERNET_MAX_PAYLOAD}"
            )
        self.size = ETHERNET_OVERHEAD + self.payload_size

    @property
    def wire_bytes(self) -> int:
        """Bytes that occupy the medium, including preamble and padding."""
        return (
            ETHERNET_PREAMBLE
            + ETHERNET_HEADER
            + max(ETHERNET_MIN_PAYLOAD, self.payload_size)
            + ETHERNET_FCS
        )

    @property
    def wire_bits(self) -> int:
        return self.wire_bytes * 8

    def __repr__(self):  # pragma: no cover - cosmetic
        return (
            f"<Frame {self.src}->{self.dst} size={self.size}B "
            f"payload={type(self.payload).__name__}>"
        )
