"""Trace replay: drive a simulated network with a recorded packet trace.

Closes the modelling loop the paper proposes: characterize a program's
traffic (§7.2), generate synthetic traffic from the analytic model, and
*replay* it onto a network to study the load it imposes — without
running the program.  Replay is open-loop: packets are injected at their
recorded offsets (per source station, through that station's NIC), so
the medium's contention and queueing reshape the timing exactly as a
real traffic generator's would.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..des import Simulator
from ..net import EthernetFrame
from .trace import PacketTrace

__all__ = ["TraceReplayer", "replay_trace"]


class _ReplayPdu:
    """Payload standing in for the original packet's transport PDU."""

    __slots__ = ("payload_size",)

    def __init__(self, payload_size: int):
        self.payload_size = payload_size


class TraceReplayer:
    """Replays a trace through per-station NICs onto a medium.

    Parameters
    ----------
    sim, nics:
        The simulator and a mapping station-id -> NIC.  Stations in the
        trace without a NIC raise at startup (catch miswiring early).
    trace:
        The packets to inject; timestamps are rebased to start at
        ``start_at``.
    """

    def __init__(self, sim: Simulator, nics: Dict[int, object],
                 trace: PacketTrace, start_at: float = 0.0):
        missing = set(int(s) for s in np.unique(trace.srcs)) - set(nics)
        if missing:
            raise ValueError(f"no NIC for trace sources {sorted(missing)}")
        self.sim = sim
        self.nics = nics
        self.trace = trace
        self.start_at = start_at
        self.injected = 0

    def start(self):
        """Launch one injection process per source station."""
        if len(self.trace) == 0:
            return []
        t0 = float(self.trace.times[0])
        procs = []
        for src in np.unique(self.trace.srcs):
            sub = self.trace._where(self.trace.srcs == src)
            procs.append(
                self.sim.process(
                    self._inject(int(src), sub, t0),
                    name=f"replay-src{src}",
                )
            )
        return procs

    def _inject(self, src: int, sub: PacketTrace, t0: float):
        sim = self.sim
        nic = self.nics[src]
        times = sub.times
        sizes = sub.sizes
        dsts = sub.dsts
        for i in range(len(sub)):
            due = self.start_at + (float(times[i]) - t0)
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            # measured size = 18 Ethernet overhead + IP payload
            payload_size = max(0, int(sizes[i]) - 18)
            frame = EthernetFrame(
                src=src,
                dst=int(dsts[i]),
                payload_size=min(payload_size, 1500),
                payload=_ReplayPdu(payload_size),
            )
            nic.send(frame)
            self.injected += 1


def replay_trace(trace: PacketTrace, bandwidth_bps: float = 10e6,
                 seed: int = 0) -> PacketTrace:
    """Replay ``trace`` onto a fresh shared Ethernet; return the capture.

    The output trace differs from the input exactly by what the medium
    does to it: serialization, carrier-sense deferral, and collisions.
    Comparing the two quantifies how much the network reshapes an
    offered load.
    """
    from ..des import Simulator
    from ..net import EthernetBus, Nic
    from .trace import TraceRecorder

    sim = Simulator()
    bus = EthernetBus(sim, bandwidth_bps=bandwidth_bps, seed=seed)
    stations = set(int(h) for h in trace.hosts())
    # Sorted: Nic construction order fixes each tx process's scheduling
    # rank, so it must not depend on set hash order.
    nics = {sid: Nic(sim, bus, sid) for sid in sorted(stations)}
    recorder = TraceRecorder(bus)
    replayer = TraceReplayer(sim, nics, trace)
    replayer.start()
    sim.run()
    return recorder.trace()
