"""Trace persistence: compact npz and a tcpdump-style text format."""

from __future__ import annotations

import hashlib
import io
import os
from pathlib import Path
from typing import Union

import numpy as np

from ..transport import PROTO_TCP, PROTO_UDP
from .trace import TRACE_DTYPE, PacketTrace

__all__ = [
    "save_npz",
    "save_npz_atomic",
    "load_npz",
    "to_text",
    "from_text",
    "save_text",
    "load_text",
    "trace_digest",
]

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp", 0: "other"}
_PROTO_CODES = {v: k for k, v in _PROTO_NAMES.items()}


def save_npz(trace: PacketTrace, path: Union[str, Path]) -> None:
    """Save a trace as a compressed npz file."""
    np.savez_compressed(str(path), packets=trace.data)


def save_npz_atomic(trace: PacketTrace, path: Union[str, Path]) -> None:
    """Save a trace so concurrent readers never see a partial file.

    Writes to a temporary sibling and renames into place — the property
    the parallel trace-cache warmers rely on when several processes
    target the same cache directory.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, packets=trace.data)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def trace_digest(trace: PacketTrace) -> str:
    """SHA-256 over the trace's packed records.

    Two traces digest equal iff every timestamp, size, address, and kind
    byte is identical — the check behind "parallel production is
    byte-identical to serial".
    """
    return hashlib.sha256(trace.data.tobytes()).hexdigest()


def load_npz(path: Union[str, Path]) -> PacketTrace:
    """Load a trace written by :func:`save_npz`.

    Files written before the ``retx`` column existed load with the
    column zero-filled.
    """
    with np.load(str(path)) as archive:
        data = archive["packets"]
    if data.dtype != TRACE_DTYPE:
        missing = set(TRACE_DTYPE.names) - set(data.dtype.names or ())
        if missing - {"retx"}:
            raise ValueError(
                f"npz trace missing fields {sorted(missing)} at {path}"
            )
        upgraded = np.zeros(len(data), dtype=TRACE_DTYPE)
        for name in data.dtype.names:
            upgraded[name] = data[name]
        data = upgraded
    return PacketTrace(np.asarray(data, dtype=TRACE_DTYPE))


def to_text(trace: PacketTrace) -> str:
    """Render as tcpdump-flavoured lines::

        0.001234 host2 > host3: tcp 1518 kind=0
    """
    out = io.StringIO()
    for row in trace.data:
        proto = _PROTO_NAMES.get(int(row["proto"]), str(int(row["proto"])))
        retx = " retx=1" if int(row["retx"]) else ""
        out.write(
            f"{row['time']:.6f} host{int(row['src'])} > host{int(row['dst'])}: "
            f"{proto} {int(row['size'])} kind={int(row['kind'])}{retx}\n"
        )
    return out.getvalue()


def from_text(text: str) -> PacketTrace:
    """Parse the format produced by :func:`to_text`."""
    rows = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tokens = line.split()
            if len(tokens) == 8:
                (time_s, src_s, _gt, dst_s, proto_s, size_s, kind_s,
                 retx_s) = tokens
                if not retx_s.startswith("retx="):
                    raise ValueError(f"unexpected trailing token {retx_s!r}")
                retx = int(retx_s.removeprefix("retx="))
            else:
                time_s, src_s, _gt, dst_s, proto_s, size_s, kind_s = tokens
                retx = 0
            time = float(time_s)
            src = int(src_s.removeprefix("host"))
            dst = int(dst_s.removeprefix("host").rstrip(":"))
            proto = _PROTO_CODES.get(proto_s, 0)
            size = int(size_s)
            kind = int(kind_s.removeprefix("kind="))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"malformed trace line {lineno}: {line!r}") from exc
        rows.append((time, size, src, dst, proto, kind, retx))
    if not rows:
        return PacketTrace.empty()
    return PacketTrace.from_rows(rows)


def save_text(trace: PacketTrace, path: Union[str, Path]) -> None:
    Path(path).write_text(to_text(trace))


def load_text(path: Union[str, Path]) -> PacketTrace:
    return from_text(Path(path).read_text())
