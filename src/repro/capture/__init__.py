"""Packet capture: promiscuous tracing and trace persistence."""

from .replay import TraceReplayer, replay_trace
from .io import (
    from_text,
    load_npz,
    load_text,
    save_npz,
    save_npz_atomic,
    save_text,
    to_text,
    trace_digest,
)
from .trace import (
    KIND_TCP_ACK,
    KIND_TCP_DATA,
    KIND_UDP,
    PacketTrace,
    TraceRecorder,
)

__all__ = [
    "PacketTrace",
    "TraceRecorder",
    "KIND_TCP_DATA",
    "KIND_TCP_ACK",
    "KIND_UDP",
    "TraceReplayer",
    "replay_trace",
    "save_npz",
    "save_npz_atomic",
    "load_npz",
    "trace_digest",
    "to_text",
    "from_text",
    "save_text",
    "load_text",
]
