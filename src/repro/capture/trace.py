"""Packet traces: the tcpdump of the simulated LAN.

A :class:`TraceRecorder` listens promiscuously on the bus and records,
for every frame, the fields the paper's methodology kept: timestamp,
measured size (data + TCP/UDP header + IP header + Ethernet header and
trailer), protocol, source, and destination.  The finished
:class:`PacketTrace` is a NumPy structured array, so every analysis in
:mod:`repro.analysis` is vectorized.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..net import EthernetBus, EthernetFrame
from ..transport import PROTO_TCP, PROTO_UDP, TcpSegment, UdpDatagram

__all__ = ["PacketTrace", "TraceRecorder", "KIND_TCP_DATA", "KIND_TCP_ACK", "KIND_UDP"]

#: Packet kind codes (finer than IP protocol: ACKs are their own class).
KIND_TCP_DATA = 0
KIND_TCP_ACK = 1
KIND_UDP = 2
KIND_OTHER = 3

TRACE_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("size", np.uint32),
        ("src", np.int32),
        ("dst", np.int32),
        ("proto", np.uint8),
        ("kind", np.uint8),
        ("retx", np.uint8),  # 1 = TCP retransmission (loss recovery)
    ]
)


class PacketTrace:
    """An immutable packet trace backed by a structured array."""

    def __init__(self, data: np.ndarray):
        if data.dtype != TRACE_DTYPE:
            raise ValueError(f"expected dtype {TRACE_DTYPE}, got {data.dtype}")
        self._data = data

    # -- construction -----------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Tuple]) -> "PacketTrace":
        """Build from an iterable of (time, size, src, dst, proto, kind)
        or (..., kind, retx) tuples; a missing retx column means no
        retransmissions."""
        rows = [tuple(r) for r in rows]
        want = len(TRACE_DTYPE)
        rows = [r + (0,) if len(r) == want - 1 else r for r in rows]
        arr = np.array(rows, dtype=TRACE_DTYPE)
        return cls(arr)

    @classmethod
    def empty(cls) -> "PacketTrace":
        return cls(np.empty(0, dtype=TRACE_DTYPE))

    @classmethod
    def concat(cls, traces) -> "PacketTrace":
        """Merge traces into one, sorted by timestamp (stable)."""
        traces = list(traces)
        if not traces:
            return cls.empty()
        data = np.concatenate([t.data for t in traces])
        order = np.argsort(data["time"], kind="stable")
        return cls(data[order])

    # -- columns -------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def times(self) -> np.ndarray:
        return self._data["time"]

    @property
    def sizes(self) -> np.ndarray:
        return self._data["size"]

    @property
    def srcs(self) -> np.ndarray:
        return self._data["src"]

    @property
    def dsts(self) -> np.ndarray:
        return self._data["dst"]

    @property
    def protos(self) -> np.ndarray:
        return self._data["proto"]

    @property
    def kinds(self) -> np.ndarray:
        return self._data["kind"]

    @property
    def retransmits(self) -> np.ndarray:
        """1 where the packet is a TCP retransmission, else 0."""
        return self._data["retx"]

    # -- scalars --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    @property
    def duration(self) -> float:
        """Seconds between first and last packet (0 for < 2 packets)."""
        if len(self._data) < 2:
            return 0.0
        return float(self._data["time"][-1] - self._data["time"][0])

    @property
    def total_bytes(self) -> int:
        return int(self._data["size"].sum())

    def retransmit_share(self) -> float:
        """Fraction of trace bytes carried by retransmitted segments —
        the run summary's retransmission-traffic share."""
        total = self._data["size"].sum()
        if total == 0:
            return 0.0
        retx = self._data["size"][self._data["retx"] != 0].sum()
        return float(retx) / float(total)

    # -- filters ---------------------------------------------------------------
    def _where(self, mask: np.ndarray) -> "PacketTrace":
        return PacketTrace(self._data[mask])

    def connection(self, src: int, dst: int) -> "PacketTrace":
        """The paper's *connection*: a simplex machine-to-machine channel.

        All packets from machine ``src`` to machine ``dst``, regardless of
        port or protocol — message TCP, daemon UDP, and the ACKs this
        machine sends for the symmetric channel alike.
        """
        return self._where((self.srcs == src) & (self.dsts == dst))

    def between(self, t0: float, t1: float) -> "PacketTrace":
        """Packets with t0 <= time < t1."""
        t = self.times
        return self._where((t >= t0) & (t < t1))

    def protocol(self, proto: int) -> "PacketTrace":
        return self._where(self.protos == proto)

    def subset(self, hosts) -> "PacketTrace":
        """Packets whose source *and* destination are both in ``hosts``.

        Isolates one application's traffic when several programs share
        the LAN on disjoint machine sets.
        """
        hosts = np.asarray(sorted(hosts))
        return self._where(
            np.isin(self.srcs, hosts) & np.isin(self.dsts, hosts)
        )

    def kind(self, kind: int) -> "PacketTrace":
        return self._where(self.kinds == kind)

    def hosts(self) -> np.ndarray:
        """Sorted unique machine ids appearing in the trace."""
        return np.unique(np.concatenate([self.srcs, self.dsts]))

    def connections(self):
        """All (src, dst) pairs that carried at least one packet."""
        pairs = np.unique(
            np.stack([self.srcs, self.dsts], axis=1), axis=0
        )
        return [tuple(int(x) for x in row) for row in pairs]

    def shifted(self, t0: float) -> "PacketTrace":
        """A copy with timestamps rebased so the trace starts at ``t0``."""
        data = self._data.copy()
        if len(data):
            data["time"] += t0 - data["time"][0]
        return PacketTrace(data)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"<PacketTrace {len(self)} packets over {self.duration:.3f}s>"


class TraceRecorder:
    """Promiscuous capture of every frame delivered on a bus."""

    def __init__(self, bus: EthernetBus):
        self._rows: list = []
        self._bus = bus
        bus.add_listener(self._on_frame)

    def _on_frame(self, frame: EthernetFrame, now: float) -> None:
        pdu = frame.payload
        retx = 0
        if isinstance(pdu, TcpSegment):
            proto = PROTO_TCP
            kind = KIND_TCP_ACK if pdu.is_ack else KIND_TCP_DATA
            if pdu.retransmit:
                retx = 1
        elif isinstance(pdu, UdpDatagram):
            proto = PROTO_UDP
            kind = KIND_UDP
        else:
            proto = 0
            kind = KIND_OTHER
        self._rows.append(
            (now, frame.size, frame.src, frame.dst, proto, kind, retx)
        )

    @property
    def drops(self) -> list:
        """The medium's drop events — frames the capture never saw
        because the network destroyed them (loss, corruption, queue
        overflow, excessive collisions)."""
        return list(getattr(self._bus, "drop_log", ()))

    def __len__(self) -> int:
        return len(self._rows)

    def trace(self) -> PacketTrace:
        """Snapshot the capture as an immutable trace."""
        if not self._rows:
            return PacketTrace.empty()
        return PacketTrace(np.array(self._rows, dtype=TRACE_DTYPE))

    def clear(self) -> None:
        self._rows.clear()
