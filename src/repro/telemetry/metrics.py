"""Per-run metrics snapshots (``metrics.json``).

A metrics snapshot is the flat, diffable summary of one instrumented
run: every counter and gauge, wall self time per subsystem, and a span
census.  ``repro profile --emit-metrics`` writes one next to the Chrome
trace; the CI profile-smoke job archives it so the perf trajectory of
the simulator itself is measured, not guessed.

Schema (``METRICS_SCHEMA_VERSION``)
-----------------------------------
``{"schema": 1, "meta": {...}, "counters": {...}, "gauges": {...},
"wall": {"by_subsystem": {...}, "by_process": {...}},
"spans": {"count": N, "open": N, "by_category": {...}}}``

``meta`` carries whatever run identification the caller supplies
(program, scale, seed, wall seconds, sim duration, packets, ...) plus a
``reconciliation`` section when the caller cross-checks telemetry
counters against ground-truth ``BusStats``/``NicStats``.
"""

from __future__ import annotations

import json
from typing import Dict

from .core import Telemetry

__all__ = ["METRICS_SCHEMA_VERSION", "metrics_snapshot", "write_metrics"]

METRICS_SCHEMA_VERSION = 1


def _rounded(mapping: Dict[str, float]) -> Dict[str, float]:
    """Sort keys and trim float noise for stable, diffable JSON."""
    out = {}
    for key in sorted(mapping):
        value = mapping[key]
        out[key] = round(value, 9) if isinstance(value, float) else value
    return out


def metrics_snapshot(tel: Telemetry, **meta) -> dict:
    """The snapshot document for one telemetry instance."""
    wall_subsystem = {
        name: {"calls": int(calls), "seconds": round(seconds, 9)}
        for name, (calls, seconds) in sorted(tel.wall_by_subsystem().items())
    }
    wall_process = {
        name: {"calls": int(calls), "seconds": round(seconds, 9)}
        for name, (calls, seconds) in sorted(tel.wall_by_process.items())
    }
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "label": tel.label,
        "meta": meta,
        "counters": _rounded(tel.counters),
        "gauges": _rounded(tel.gauges),
        "wall": {
            "by_subsystem": wall_subsystem,
            "by_process": wall_process,
        },
        "spans": {
            "count": len(tel.spans),
            "open": len(tel.open_spans()),
            "by_category": {k: tel.spans_by_category()[k]
                            for k in sorted(tel.spans_by_category())},
        },
    }


def write_metrics(tel: Telemetry, path, **meta) -> dict:
    """Write the snapshot to ``path``; returns the document."""
    doc = metrics_snapshot(tel, **meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False, default=str)
    return doc
