"""Telemetry core: spans, counters, gauges, and wall-time accounting.

A :class:`Telemetry` instance rides along with a simulation the same way
the runtime sanitizer does: components call its hooks when the driving
simulator carries one (``sim.telemetry is not None``), and the disabled
cost of every instrumentation point is a single attribute check.  Like
the sanitizer, telemetry is strictly an **observer** — it creates no
events, draws no random numbers, and keeps all bookkeeping outside
simulation state, so an instrumented run produces byte-identical traces
to an uninstrumented one (enforced by golden-digest tests).

Three kinds of measurement are collected:

* **spans** — named intervals keyed by *both* simulation time and wall
  time, carrying a category (the subsystem) and a track (the simulated
  entity: ``run``, ``rank2``, ``nic1``, ``tcp 1->2``, ``port0``, ...).
  The span taxonomy — run → program phase → bus transaction → TCP
  segment — is documented in ``docs/architecture.md``.
* **counters / gauges** — monotone event counts (events popped, frames
  offered/delivered/dropped, collisions, backoff rounds, retransmits,
  cache hits, bytes per connection) and last/max-value gauges.
* **wall accounting** — wall-clock self time per simulation process,
  recorded around every process resume; the profiler aggregates it into
  a per-subsystem hot-path breakdown.

Wall-clock readings come from an injectable ``clock`` callable (default
``time.perf_counter``); they are recorded next to simulation state,
never fed into it, which is why telemetry cannot perturb determinism.

This module deliberately imports nothing from the simulation packages —
the DES core imports *it* lazily, so there is no cycle.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Telemetry",
    "TELEMETRY_ENV_VAR",
    "subsystem_of",
    "process_telemetry",
    "enable_process_telemetry",
    "disable_process_telemetry",
    "maybe_count",
]

#: Environment switch: set REPRO_TELEMETRY=1 to attach the process-wide
#: telemetry instance to every simulator the process builds.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: The wall clock used when none is injected.  Telemetry measures wall
#: time by design; readings are recorded beside simulation state and
#: never fed back into it (the determinism contract's carve-out for
#: observer-only instrumentation).
_WALL_CLOCK = time.perf_counter

#: Process-name → subsystem rules for the profiler's hot-path table.
#: Ordered; first match wins.  The MAC procedure of the shared bus runs
#: inside the owning NIC's tx process, so ``net.nic`` self time covers
#: both the adapter queue and the CSMA/CD machinery it drives.
_SUBSYSTEM_RULES = (
    (re.compile(r"^nic\d+-tx$"), "net.nic"),
    (re.compile(r"^tcp-"), "transport.tcp"),
    (re.compile(r"^pvmd\d+-"), "pvm.daemon"),
    (re.compile(r"^pvm-dispatch$"), "pvm.vm"),
    (re.compile(r"^port\d+$"), "net.switched"),
    (re.compile(r"-rank\d+$"), "fx.program"),
)


def subsystem_of(process_name: str) -> str:
    """The subsystem bucket a simulation process's wall time belongs to."""
    for pattern, subsystem in _SUBSYSTEM_RULES:
        if pattern.search(process_name):
            return subsystem
    return "des.other"


class Span:
    """One named interval on one track.

    ``sim_start``/``sim_end`` are simulation seconds (``None`` for
    harness-level spans recorded outside a live simulation);
    ``wall_start``/``wall_end`` are wall seconds from the telemetry
    instance's clock.  ``parent_id`` is the span open on the same track
    when this one began (or the run root), giving the hierarchy
    run → program phase → bus transaction → TCP segment.
    """

    __slots__ = ("span_id", "parent_id", "name", "category", "track",
                 "sim_start", "sim_end", "wall_start", "wall_end", "args")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 category: str, track: str, sim_start: Optional[float],
                 wall_start: float, args: Optional[dict]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.sim_start = sim_start
        self.sim_end: Optional[float] = None
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.args = args

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> Optional[float]:
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def __repr__(self):  # pragma: no cover - cosmetic
        return (f"<Span {self.name!r} cat={self.category} track={self.track} "
                f"sim=[{self.sim_start}, {self.sim_end}]>")


class Telemetry:
    """Counters, gauges, spans, and wall accounting for one (or more) runs.

    Parameters
    ----------
    label:
        Free-form identification carried into exports.
    clock:
        Wall-clock callable; injectable so tests can drive deterministic
        wall timestamps.
    max_spans:
        Retention cap: spans beyond it are counted
        (``telemetry.spans_dropped``) but not stored, bounding memory on
        full-scale runs.
    max_samples:
        Retention cap for counter-series samples (see :meth:`sample`);
        samples beyond it are counted (``telemetry.samples_dropped``)
        but not stored.
    """

    def __init__(self, label: str = "", clock: Optional[Callable[[], float]] = None,
                 max_spans: int = 1_000_000, max_samples: int = 1_000_000):
        if max_spans < 0:
            raise ValueError(f"max_spans must be >= 0, got {max_spans}")
        if max_samples < 0:
            raise ValueError(f"max_samples must be >= 0, got {max_samples}")
        self.label = label
        self.clock: Callable[[], float] = clock if clock is not None else _WALL_CLOCK
        self.max_spans = max_spans
        self.max_samples = max_samples
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: (track, name) -> [(sim_time, value), ...] counter time series.
        self.series: Dict[tuple, List[tuple]] = {}
        self._n_samples = 0
        self.spans: List[Span] = []
        #: process name -> [resumes, wall seconds] (profiler input).
        self.wall_by_process: Dict[str, List[float]] = {}
        self.wall_epoch = self.clock()
        self._next_span_id = 0
        self._open_by_track: Dict[str, List[Span]] = {}
        self._root: Optional[Span] = None

    # -- counters / gauges --------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Increment a monotone counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge's latest value."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Record a gauge as the maximum value ever seen."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def sample(self, name: str, track: str, sim_time: float, value: float) -> None:
        """Append one point to the ``(track, name)`` counter time series.

        Series render as Perfetto counter tracks ("C" events) in the
        Chrome export — e.g. per-port queue depth next to the TCP spans.
        Beyond ``max_samples`` points are counted but not stored.
        """
        if self._n_samples >= self.max_samples:
            self.count("telemetry.samples_dropped")
            return
        self._n_samples += 1
        self.series.setdefault((track, name), []).append((sim_time, value))

    # -- spans ---------------------------------------------------------
    def begin(self, name: str, category: str, track: str,
              sim_time: Optional[float] = None, root: bool = False,
              **args: Any) -> Span:
        """Open a span on ``track`` at ``sim_time`` (and wall now)."""
        self._next_span_id += 1
        stack = self._open_by_track.setdefault(track, [])
        if stack:
            parent_id: Optional[int] = stack[-1].span_id
        elif self._root is not None and not root:
            parent_id = self._root.span_id
        else:
            parent_id = None
        span = Span(self._next_span_id, parent_id, name, category, track,
                    sim_time, self.clock(), args or None)
        stack.append(span)
        if root:
            self._root = span
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.count("telemetry.spans_dropped")
        return span

    def end(self, span: Span, sim_time: Optional[float] = None) -> Span:
        """Close a span (idempotent on the track stack)."""
        span.sim_end = sim_time
        span.wall_end = self.clock()
        stack = self._open_by_track.get(span.track)
        if stack is not None:
            try:
                stack.remove(span)
            except ValueError:
                pass
        if self._root is span:
            self._root = None
        return span

    def complete(self, name: str, category: str, track: str,
                 sim_start: Optional[float], sim_end: Optional[float],
                 **args: Any) -> Span:
        """Record a span whose bounds are already known (zero wall width)."""
        span = self.begin(name, category, track, sim_start, **args)
        self.end(span, sim_end)
        return span

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended, across all tracks."""
        return [s for stack in self._open_by_track.values() for s in stack]

    # -- hot hooks -----------------------------------------------------
    def on_event_popped(self) -> None:
        """One heap pop in ``Simulator.step`` (the hottest hook)."""
        self.counters["des.events_popped"] = \
            self.counters.get("des.events_popped", 0) + 1

    def wall_account(self, process_name: str, seconds: float) -> None:
        """Attribute one process resume's wall time to its process."""
        entry = self.wall_by_process.get(process_name)
        if entry is None:
            self.wall_by_process[process_name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    # -- aggregation ---------------------------------------------------
    def wall_by_subsystem(self) -> Dict[str, List[float]]:
        """``wall_by_process`` folded through :func:`subsystem_of`."""
        out: Dict[str, List[float]] = {}
        for name, (calls, seconds) in self.wall_by_process.items():
            bucket = out.setdefault(subsystem_of(name), [0, 0.0])
            bucket[0] += calls
            bucket[1] += seconds
        return out

    def spans_by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        return out

    def merge_from(self, other: "Telemetry") -> None:
        """Fold another instance's counters/gauges/wall into this one.

        Spans are not merged (their sim timelines are per-run); use a
        shared instance when one Chrome trace should cover several runs.
        """
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.gauges.items():
            self.gauge_max(name, value)
        for name, (calls, seconds) in other.wall_by_process.items():
            entry = self.wall_by_process.setdefault(name, [0, 0.0])
            entry[0] += calls
            entry[1] += seconds
        for key, points in other.series.items():
            self.series.setdefault(key, []).extend(points)
            self._n_samples += len(points)

    def __repr__(self):  # pragma: no cover - cosmetic
        return (f"<Telemetry {self.label!r} spans={len(self.spans)} "
                f"counters={len(self.counters)}>")


# -- process-wide instance ------------------------------------------------
#: The shared instance attached by ``REPRO_TELEMETRY=1`` / ``--telemetry``
#: so counters aggregate across every simulator a process builds (the
#: experiments harness runs many).  ``repro profile`` uses a private
#: instance instead, so its spans cover exactly one run.
_PROCESS_TELEMETRY: Optional[Telemetry] = None


def process_telemetry() -> Optional[Telemetry]:
    """The process-wide telemetry instance, or ``None`` when disabled."""
    return _PROCESS_TELEMETRY


def enable_process_telemetry(tel: Optional[Telemetry] = None) -> Telemetry:
    """Install (or return the existing) process-wide telemetry instance."""
    global _PROCESS_TELEMETRY
    if tel is not None:
        _PROCESS_TELEMETRY = tel
    elif _PROCESS_TELEMETRY is None:
        _PROCESS_TELEMETRY = Telemetry(label="process")
    return _PROCESS_TELEMETRY


def disable_process_telemetry() -> Optional[Telemetry]:
    """Detach and return the process-wide instance (for tests/CLI)."""
    global _PROCESS_TELEMETRY
    tel, _PROCESS_TELEMETRY = _PROCESS_TELEMETRY, None
    return tel


def maybe_count(name: str, value: float = 1) -> None:
    """Bump a process-wide counter iff process telemetry is enabled.

    The disabled cost is one global read and a ``None`` check, so
    harness-layer components (the trace store, ``get_trace``) call this
    unconditionally.
    """
    tel = _PROCESS_TELEMETRY
    if tel is not None:
        tel.count(name, value)
