"""Wall-clock profiling of instrumented runs (``repro profile``).

:func:`profile_program` reproduces one measured run under a private
:class:`~repro.telemetry.Telemetry` instance and keeps the cluster
around, so the result can (a) break the run's wall time down per
subsystem from the per-process resume accounting, and (b) reconcile the
telemetry counters against the ground-truth ``BusStats``/``NicStats``
ledgers — if instrumentation ever drifts from the simulation it claims
to observe, :meth:`ProfileResult.reconcile` says exactly where.

Self time is attributed where the Python frames actually run: the
shared bus's CSMA/CD procedure executes inside the owning NIC's tx
process (``yield from``), so its cost lands in ``net.nic``; the
``des.engine`` row is the remainder of the run's wall time spent in
heap management and event dispatch outside any process resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .core import Telemetry

__all__ = ["ProfileResult", "profile_program", "format_profile"]


@dataclass
class ProfileResult:
    """One profiled run: the trace, its telemetry, and the testbed."""

    name: str
    scale: str
    seed: int
    trace: object          # PacketTrace
    telemetry: Telemetry
    wall_seconds: float
    cluster: object        # FxCluster (kept for reconciliation)

    @property
    def events_popped(self) -> int:
        return int(self.telemetry.counters.get("des.events_popped", 0))

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_popped / self.wall_seconds

    def subsystem_rows(self) -> List[Tuple[str, int, float, float]]:
        """(subsystem, resumes, self seconds, share-of-run) rows, plus a
        ``des.engine`` remainder row, sorted by descending self time."""
        rows = []
        accounted = 0.0
        for subsystem, (calls, seconds) in self.telemetry.wall_by_subsystem().items():
            rows.append((subsystem, int(calls), seconds))
            accounted += seconds
        engine = max(0.0, self.wall_seconds - accounted)
        rows.append(("des.engine", self.events_popped, engine))
        rows.sort(key=lambda r: r[2], reverse=True)
        total = self.wall_seconds if self.wall_seconds > 0 else 1.0
        return [(name, calls, seconds, seconds / total)
                for name, calls, seconds in rows]

    def reconcile(self) -> Dict[str, dict]:
        """Telemetry counters vs. the simulation's own ledgers.

        Returns ``{check: {"telemetry": x, "ground_truth": y, "ok": bool}}``
        for the frame/drop/retransmit counters the acceptance contract
        names.  Every check must hold on every run — a mismatch means an
        instrumentation hook went stale.
        """
        counters = self.telemetry.counters
        bus = self.cluster.bus
        nics = [stack.nic for stack in self.cluster.stacks]
        pipes = [p for conn in self.cluster.vm._connections.values()
                 for p in (conn.forward, conn.reverse)]
        drop_counters = sum(v for k, v in counters.items()
                            if k.startswith("drops."))
        checks = {
            "bus.frames_delivered": (counters.get("bus.frames_delivered", 0),
                                     bus.stats.frames_delivered),
            "bus.bytes_delivered": (counters.get("bus.bytes_delivered", 0),
                                    bus.stats.bytes_delivered),
            "bus.collisions": (counters.get("bus.collisions", 0),
                               bus.stats.collisions),
            "net.frames_dropped": (counters.get("net.frames_dropped", 0),
                                   len(bus.drop_log)),
            "drops.by_reason": (drop_counters, len(bus.drop_log)),
            "nic.frames_sent": (counters.get("nic.frames_sent", 0),
                                sum(n.stats.frames_sent for n in nics)),
            "nic.bytes_sent": (counters.get("nic.bytes_sent", 0),
                               sum(n.stats.bytes_sent for n in nics)),
            "tcp.retransmits": (counters.get("tcp.retransmits", 0),
                                sum(p.retransmits for p in pipes)),
            "tcp.segments_sent": (counters.get("tcp.segments_sent", 0),
                                  sum(p.segments_sent for p in pipes)),
            "tcp.acks_sent": (counters.get("tcp.acks_sent", 0),
                              sum(p.acks_sent for p in pipes)),
        }
        return {
            name: {"telemetry": int(tel_value),
                   "ground_truth": int(truth),
                   "ok": int(tel_value) == int(truth)}
            for name, (tel_value, truth) in checks.items()
        }

    @property
    def reconciled(self) -> bool:
        return all(c["ok"] for c in self.reconcile().values())


def profile_program(
    name: str,
    scale: str = "default",
    seed: int = 0,
    nprocs: int = 4,
    iterations: Optional[int] = None,
    faults=None,
    telemetry: Optional[Telemetry] = None,
) -> ProfileResult:
    """Run one measured program under telemetry and return the profile.

    Mirrors :func:`repro.programs.run_measured`'s testbed construction
    but keeps the cluster, so counters can be reconciled against the
    simulation's own statistics.  Imports lazily — telemetry sits below
    the simulation packages in the layering.
    """
    from ..fx import FxCluster, FxRuntime
    from ..programs import make_program
    from ..programs.calibration import ITERATIONS, work_model_for

    if iterations is None:
        try:
            iterations = ITERATIONS[name][scale]
        except KeyError:
            raise KeyError(
                f"unknown program/scale {name!r}/{scale!r}"
            ) from None
    tel = telemetry if telemetry is not None else Telemetry(
        label=f"{name}/{scale}/seed{seed}"
    )
    program = make_program(name)
    cluster = FxCluster(n_machines=nprocs + 1, seed=seed, faults=faults,
                        telemetry=tel)
    runtime = FxRuntime(cluster, nprocs, work_model_for(name, seed=seed))
    wall_start = tel.clock()
    trace = runtime.execute(program, iterations)
    wall = tel.clock() - wall_start
    tel.gauge("run.wall_seconds", wall)
    tel.gauge("run.sim_seconds", cluster.sim.now)
    queue = cluster.sim.queue
    tel.gauge("des.queue.resizes", float(getattr(queue, "resizes", 0)))
    return ProfileResult(name=name, scale=scale, seed=seed, trace=trace,
                         telemetry=tel, wall_seconds=wall, cluster=cluster)


def format_profile(result: ProfileResult, top_counters: int = 12) -> str:
    """The ``repro profile`` report: hot-path table + headline numbers."""
    tel = result.telemetry
    lines = [
        f"== profile: {result.name} scale={result.scale} "
        f"seed={result.seed} ==",
        f"wall time:        {result.wall_seconds * 1e3:10.2f} ms",
        f"sim time:         {result.cluster.sim.now:10.3f} s",
        f"events popped:    {result.events_popped:10d}",
        f"events/sec:       {result.events_per_second:10.0f}",
        f"packets captured: {len(result.trace):10d}",
        f"event queue:      {result.cluster.sim.queue.name:>10s} "
        f"({getattr(result.cluster.sim.queue, 'resizes', 0)} resizes)",
        "",
        f"{'subsystem':<16} {'resumes':>9} {'self ms':>10} {'share':>7}",
        "-" * 46,
    ]
    for subsystem, calls, seconds, share in result.subsystem_rows():
        lines.append(
            f"{subsystem:<16} {calls:>9d} {seconds * 1e3:>10.2f} "
            f"{share:>6.1%}"
        )
    lines.append("")
    lines.append("top counters:")
    by_value = sorted(tel.counters.items(), key=lambda kv: (-kv[1], kv[0]))
    for name, value in by_value[:top_counters]:
        lines.append(f"  {name:<32} {value:>14.0f}")
    recon = result.reconcile()
    bad = [name for name, check in recon.items() if not check["ok"]]
    if bad:
        lines.append("")
        lines.append(f"RECONCILIATION FAILED: {', '.join(bad)}")
        for name in bad:
            check = recon[name]
            lines.append(f"  {name}: telemetry={check['telemetry']} "
                         f"ground-truth={check['ground_truth']}")
    else:
        lines.append("")
        lines.append(
            f"reconciliation: {len(recon)}/{len(recon)} counters match "
            "BusStats/NicStats"
        )
    return "\n".join(lines)
