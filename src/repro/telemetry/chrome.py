"""Chrome trace-event (Perfetto) export.

Serializes a :class:`~repro.telemetry.Telemetry` instance into the
Chrome trace-event JSON format, loadable by ``chrome://tracing`` and
https://ui.perfetto.dev.  Two processes appear in the viewer:

* ``pid 1 — simulation`` carries every span with simulation timestamps,
  one named thread (track) per simulated entity: the run, each rank,
  each NIC, each TCP pipe direction, each switch port.  Timestamps are
  simulation microseconds, so the viewer's timeline *is* the simulated
  clock.
* ``pid 2 — harness`` carries wall-clock spans recorded outside a live
  simulation (trace-store production, analysis stages), timed relative
  to the telemetry instance's wall epoch.

Counter time series recorded with :meth:`Telemetry.sample` (e.g. the
per-port queue depth from :mod:`repro.netmon`) export as "C"-phase
counter events on the simulation timeline, so a queue buildup is visible
next to the compute/TCP spans that caused it.

Final counter and gauge values ride in ``otherData`` (the trace-event
format's free-form metadata section), so the numbers behind a track are
one click away in the viewer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .core import Telemetry

__all__ = ["chrome_trace", "write_chrome", "validate_chrome_trace"]

#: pid for spans on the simulated timeline vs. the harness wall timeline.
SIM_PID = 1
WALL_PID = 2

#: Trace-event phase codes used by the exporter.
_PH_COMPLETE = "X"
_PH_METADATA = "M"
_PH_COUNTER = "C"


def chrome_trace(tel: Telemetry, label: Optional[str] = None) -> dict:
    """The trace-event document for one telemetry instance."""
    events: List[dict] = []
    track_ids: Dict[str, int] = {}

    def tid_for(track: str, pid: int) -> int:
        tid = track_ids.get(track)
        if tid is None:
            tid = len(track_ids) + 1
            track_ids[track] = tid
            events.append({
                "ph": _PH_METADATA, "name": "thread_name",
                "pid": pid, "tid": tid, "args": {"name": track},
            })
        return tid

    for pid, name in ((SIM_PID, "simulation (sim time)"),
                      (WALL_PID, "harness (wall time)")):
        events.append({
            "ph": _PH_METADATA, "name": "process_name",
            "pid": pid, "tid": 0, "args": {"name": name},
        })

    for span in tel.spans:
        args = dict(span.args) if span.args else {}
        if span.wall_duration is not None:
            args["wall_ms"] = round(span.wall_duration * 1e3, 6)
        if span.sim_start is not None:
            ts = span.sim_start * 1e6
            sim_end = span.sim_end if span.sim_end is not None else span.sim_start
            dur = max(0.0, (sim_end - span.sim_start) * 1e6)
            pid = SIM_PID
        else:
            ts = (span.wall_start - tel.wall_epoch) * 1e6
            wall_end = (span.wall_end if span.wall_end is not None
                        else span.wall_start)
            dur = max(0.0, (wall_end - span.wall_start) * 1e6)
            pid = WALL_PID
        if span.sim_end is None and span.wall_end is None:
            args["unfinished"] = True
        events.append({
            "ph": _PH_COMPLETE,
            "name": span.name,
            "cat": span.category or "span",
            "ts": ts,
            "dur": dur,
            "pid": pid,
            "tid": tid_for(span.track or "default", pid),
            "args": args,
        })

    for track, name in sorted(tel.series):
        tid = tid_for(track, SIM_PID)
        for sim_time, value in tel.series[(track, name)]:
            events.append({
                "ph": _PH_COUNTER,
                "name": f"{track} {name}",
                "cat": "counter",
                "ts": sim_time * 1e6,
                "pid": SIM_PID,
                "tid": tid,
                "args": {"value": value},
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label if label is not None else tel.label,
            "counters": {k: tel.counters[k] for k in sorted(tel.counters)},
            "gauges": {k: tel.gauges[k] for k in sorted(tel.gauges)},
        },
    }


def write_chrome(tel: Telemetry, path, label: Optional[str] = None) -> dict:
    """Write the trace-event JSON to ``path``; returns the document."""
    doc = chrome_trace(tel, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc) -> List[str]:
    """Structural validation against the trace-event format.

    Returns a list of problems (empty = valid).  Checks the constraints
    the viewers actually rely on: the ``traceEvents`` array, a phase per
    event, and — per phase — the required name/timestamp/duration/
    process/thread fields with sane types.  Used by the test suite and
    the CI profile-smoke job.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing pid")
        if ph == _PH_METADATA:
            if not isinstance(ev.get("args"), dict):
                errors.append(f"{where}: metadata event without args")
            continue
        if ph == _PH_COMPLETE:
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad dur {dur!r}")
            if not isinstance(ev.get("tid"), int):
                errors.append(f"{where}: missing tid")
            if not isinstance(ev.get("cat"), str):
                errors.append(f"{where}: missing cat")
            continue
        if ph == _PH_COUNTER:
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter event without args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                errors.append(f"{where}: non-numeric counter value")
            continue
        errors.append(f"{where}: unexpected phase {ph!r}")
    return errors
