"""Opt-in observability for the simulator: spans, counters, profiles.

The paper's contribution is *measurement*; this package points the same
lens at the simulation itself.  A :class:`Telemetry` instance attaches
to a :class:`~repro.des.Simulator` (``Simulator(telemetry=True)``,
``REPRO_TELEMETRY=1``, or ``--telemetry`` on the CLI) and every
instrumented layer — DES core, shared bus, NICs, switch fabric, TCP,
pvmd, Fx runtime, trace store — reports into it.  Disabled, each hook
costs one attribute check; enabled, runs stay byte-identical (telemetry
observes, never schedules).

Exports: Chrome trace-event JSON (:func:`write_chrome`, opens in
Perfetto / ``chrome://tracing`` with one track per host/NIC/pipe),
``metrics.json`` snapshots (:func:`write_metrics`), and the
``repro profile`` hot-path breakdown (:func:`profile_program`).
"""

from .chrome import chrome_trace, validate_chrome_trace, write_chrome
from .core import (
    TELEMETRY_ENV_VAR,
    Span,
    Telemetry,
    disable_process_telemetry,
    enable_process_telemetry,
    maybe_count,
    process_telemetry,
    subsystem_of,
)
from .metrics import METRICS_SCHEMA_VERSION, metrics_snapshot, write_metrics
from .profile import ProfileResult, format_profile, profile_program

__all__ = [
    "Telemetry",
    "Span",
    "TELEMETRY_ENV_VAR",
    "subsystem_of",
    "process_telemetry",
    "enable_process_telemetry",
    "disable_process_telemetry",
    "maybe_count",
    "chrome_trace",
    "write_chrome",
    "validate_chrome_trace",
    "METRICS_SCHEMA_VERSION",
    "metrics_snapshot",
    "write_metrics",
    "ProfileResult",
    "profile_program",
    "format_profile",
]
