"""The abstract interpreter: dry-run every rank, no DES, no network.

Each rank's generators run against a :class:`RecordingContext` under a
deterministic round-robin scheduler.  The blocking semantics mirror the
simulated PVM exactly:

* **sends never block** — the live transport's dispatcher processes
  always drain pipes into the receiver's mailbox, so a send only costs
  time, never progress.  Here a send appends to the destination's
  mailbox immediately.
* **receives block on match** — the mailbox is scanned in FIFO order
  with the same (source, tag) predicate as
  :meth:`repro.des.resources.FilterStore.get`; no match parks the rank.
* **barriers release when all P ranks arrive**, like
  :meth:`FxRuntime._barrier_arrive`.

A full scheduler pass in which no rank advances a single step is a
stall: real deadlock, a lost message, or divergent collectives — the
checker (:mod:`.checks`) turns the frozen state into findings.

Programs using the default :meth:`FxProgram.run` driver are interpreted
segment by segment — ``setup`` once, then ``rank_body`` per iteration —
which labels every operation with its phase and makes the commprint's
per-phase tables exact.  A program overriding ``run`` is interpreted as
one opaque ``run`` segment instead (same semantics, coarser phases).

Rounds are dependency levels, not library shifts: a message's round is
its sender's level + 1 at send time, and a matched receive raises the
receiver's level to the message's round.  At P=8 this reproduces the
tree reduce's three up-sweep rounds plus the broadcast's fourth, and
the all-to-all's P-1 shift rounds, without knowing either schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fx.program import FxProgram
from .record import (
    BarrierOp,
    BarrierToken,
    ComputeOp,
    ComputeToken,
    RecordingContext,
    RecvOp,
    RecvToken,
    SendOp,
    Violation,
    XrayError,
)

__all__ = ["CommGraph", "BlockedRank", "RaceEvent", "interpret"]

#: Hard ceiling on recorded operations — a backstop against unbounded
#: bodies (``while True: yield ctx.compute(1)``), far above any real
#: program at the paper's scales (SEQ/full records ~120k ops).
MAX_OPS = 10_000_000


@dataclass
class BlockedRank:
    """A rank frozen mid-schedule when interpretation stalled."""

    rank: int
    kind: str                       # "recv" | "barrier"
    op: object                      # the RecvOp / BarrierOp waited on
    #: Sources whose messages sit in this rank's mailbox (any tag).
    pending_sources: List[int] = field(default_factory=list)


@dataclass
class RaceEvent:
    """A wildcard receive that had messages from several sources queued.

    The simulated :class:`FilterStore` would hand over whichever arrived
    first — an ordering that depends on timing, so the matched payload
    is not schedule-determined.
    """

    recv: RecvOp
    sources: List[int]


@dataclass
class CommGraph:
    """Everything the dry run learned about one (program, P) pair."""

    program: str
    nprocs: int
    iterations: int
    #: True when interpreted as setup + per-iteration body segments.
    segmented: bool
    messages: List[SendOp] = field(default_factory=list)
    recvs: List[RecvOp] = field(default_factory=list)
    computes: List[ComputeOp] = field(default_factory=list)
    barriers: List[BarrierOp] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    races: List[RaceEvent] = field(default_factory=list)
    deadlocked: bool = False
    blocked: List[BlockedRank] = field(default_factory=list)
    finished_ranks: List[int] = field(default_factory=list)
    barrier_counts: List[int] = field(default_factory=list)
    #: Messages still sitting in a mailbox when interpretation ended.
    unmatched: List[SendOp] = field(default_factory=list)

    # -- aggregate views ----------------------------------------------------
    @property
    def clean(self) -> bool:
        """No violations, no stall, no leftovers, no races."""
        return not (self.violations or self.deadlocked
                    or self.unmatched or self.races)

    def sent_by_rank(self) -> List[int]:
        counts = [0] * self.nprocs
        for m in self.messages:
            counts[m.src] += 1
        return counts

    def received_by_rank(self) -> List[int]:
        counts = [0] * self.nprocs
        for m in self.messages:
            if m.delivered:
                counts[m.dst] += 1
        return counts

    def work_by_rank(self) -> List[float]:
        work = [0.0] * self.nprocs
        for c in self.computes:
            work[c.rank] += c.work
        return work

    def pair_payloads(self) -> Dict[Tuple[int, int], int]:
        """Payload bytes per ordered (src, dst) pair, header excluded."""
        pairs: Dict[Tuple[int, int], int] = {}
        for m in self.messages:
            key = (m.src, m.dst)
            pairs[key] = pairs.get(key, 0) + m.nbytes
        return pairs

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        pairs: Dict[Tuple[int, int], int] = {}
        for m in self.messages:
            key = (m.src, m.dst)
            pairs[key] = pairs.get(key, 0) + 1
        return pairs


class _RankState:
    """Scheduler bookkeeping for one rank."""

    __slots__ = ("rank", "ctx", "segments", "seg_pos", "segment", "gen",
                 "resume", "blocked", "done", "level", "mailbox")

    def __init__(self, rank: int, ctx: RecordingContext,
                 segments: List[Tuple[str, int]]):
        self.rank = rank
        self.ctx = ctx
        self.segments = segments
        self.seg_pos = 0
        self.segment: Tuple[str, int] = ("run", 0)
        self.gen = None
        self.resume = None
        self.blocked: Optional[object] = None   # RecvToken | BarrierToken
        self.done = False
        self.level = 0
        self.mailbox: List[SendOp] = []


class _Interp:
    """One interpretation run; collected into a :class:`CommGraph`."""

    def __init__(self, program: FxProgram, nprocs: int, iterations: int):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.program = program
        self.nprocs = nprocs
        self.iterations = iterations
        self.segmented = type(program).run is FxProgram.run
        if self.segmented:
            segments = [("setup", 0)]
            segments += [("body", i) for i in range(iterations)]
        else:
            segments = [("run", 0)]
        self.graph = CommGraph(
            program=program.name, nprocs=nprocs, iterations=iterations,
            segmented=self.segmented,
            barrier_counts=[0] * nprocs,
        )
        self.states = [
            _RankState(r, RecordingContext(self, r, nprocs), list(segments))
            for r in range(nprocs)
        ]
        self._seq = 0
        self._ops = 0
        self._barrier_waiting: List[_RankState] = []

    # -- recording callbacks (called by RecordingContext) -------------------
    def _stamp(self, op, rank: int) -> None:
        op.segment, op.seg_index = self.states[rank].segment
        self._ops += 1
        if self._ops > MAX_OPS:
            raise XrayError(
                f"op budget exceeded ({MAX_OPS} operations): the rank "
                "bodies do not terminate at this P/iteration count"
            )

    def record_compute(self, op: ComputeOp) -> None:
        self._stamp(op, op.rank)
        self.graph.computes.append(op)

    def record_send(self, src: int, dst: int, tag: int, nbytes: int,
                    fragments: int, site) -> None:
        st = self.states[src]
        op = SendOp(
            seq=self._seq, src=src, dst=dst, tag=tag, nbytes=nbytes,
            fragments=fragments, site=site, round=st.level + 1,
        )
        self._stamp(op, src)
        self._seq += 1
        self.graph.messages.append(op)
        self.states[dst].mailbox.append(op)

    def record_recv(self, op: RecvOp) -> None:
        self._stamp(op, op.rank)
        self.graph.recvs.append(op)

    def record_barrier(self, op: BarrierOp) -> None:
        self._stamp(op, op.rank)
        self.graph.barriers.append(op)
        self.graph.barrier_counts[op.rank] += 1

    def record_violation(self, violation: Violation) -> None:
        self.graph.violations.append(violation)

    # -- mailbox matching (FilterStore.get semantics) -----------------------
    def _match(self, st: _RankState, token: RecvToken) -> Optional[SendOp]:
        op = token.op
        candidates = [
            m for m in st.mailbox
            if (op.src is None or m.src == op.src)
            and (op.tag is None or m.tag == op.tag)
        ]
        if not candidates:
            return None
        if op.src is None:
            sources = sorted({m.src for m in candidates})
            if len(sources) > 1:
                self.graph.races.append(RaceEvent(recv=op, sources=sources))
        return candidates[0]

    def _deliver(self, st: _RankState, token: RecvToken, msg: SendOp) -> None:
        st.mailbox.remove(msg)
        msg.delivered = True
        msg.recv_seg = st.segment
        token.op.matched_seq = msg.seq
        if msg.recv_seg == (msg.segment, msg.seg_index):
            # Same-phase dependency: the receive deepens this rank's level.
            st.level = max(st.level, msg.round)

    # -- the scheduler ------------------------------------------------------
    def _enter_segment(self, st: _RankState) -> bool:
        """Open the next segment's generator; False when the rank is done."""
        if st.seg_pos >= len(st.segments):
            st.done = True
            return False
        st.segment = st.segments[st.seg_pos]
        st.seg_pos += 1
        st.level = 0
        label = st.segment[0]
        if label == "setup":
            gen = self.program.setup(st.ctx)
        elif label == "body":
            gen = self.program.rank_body(st.ctx)
        else:
            gen = self.program.run(st.ctx, self.iterations)
        if gen is None or not hasattr(gen, "send"):
            raise XrayError(
                f"{self.program.name}.{'rank_body' if label == 'body' else label} "
                f"did not return a generator (got {type(gen).__name__})"
            )
        st.gen = gen
        return True

    def _advance(self, st: _RankState) -> bool:
        """Drive one rank until it blocks or finishes; True if it moved."""
        moved = False
        while not st.done:
            if st.blocked is not None:
                if isinstance(st.blocked, RecvToken):
                    msg = self._match(st, st.blocked)
                    if msg is None:
                        return moved
                    self._deliver(st, st.blocked, msg)
                    st.resume = msg
                    st.blocked = None
                    moved = True
                else:   # barrier: released externally by the last arrival
                    return moved
            if st.gen is None:
                if not self._enter_segment(st):
                    return True  # finishing is progress
                moved = True
            try:
                yielded = st.gen.send(st.resume)
            except StopIteration:
                st.gen = None
                st.resume = None
                moved = True
                continue
            st.resume = None
            moved = True
            if isinstance(yielded, ComputeToken):
                continue
            if isinstance(yielded, (int, float)):
                continue  # a bare delay (the DES sleep protocol)
            if isinstance(yielded, RecvToken):
                if yielded.invalid:
                    continue  # violation recorded; do not block on it
                msg = self._match(st, yielded)
                if msg is not None:
                    self._deliver(st, yielded, msg)
                    st.resume = msg
                    continue
                st.blocked = yielded
                return moved
            if isinstance(yielded, BarrierToken):
                self._barrier_waiting.append(st)
                if len(self._barrier_waiting) == self.nprocs:
                    waiting, self._barrier_waiting = self._barrier_waiting, []
                    for other in waiting:
                        if other is not st:
                            other.blocked = None
                            other.resume = None
                    continue
                st.blocked = yielded
                return moved
            raise XrayError(
                f"rank {st.rank} yielded {type(yielded).__name__!r}; "
                "static analysis understands compute tokens, sends, "
                "receives, barriers, and bare delays"
            )
        return moved

    def run(self) -> CommGraph:
        while True:
            if all(st.done for st in self.states):
                break
            progressed = False
            for st in self.states:
                progressed = self._advance(st) or progressed
            if not progressed:
                self.graph.deadlocked = True
                break
        for st in self.states:
            if st.done:
                self.graph.finished_ranks.append(st.rank)
            elif st.blocked is not None:
                kind = "recv" if isinstance(st.blocked, RecvToken) else "barrier"
                self.graph.blocked.append(BlockedRank(
                    rank=st.rank, kind=kind, op=st.blocked.op,
                    pending_sources=sorted({m.src for m in st.mailbox}),
                ))
            self.graph.unmatched.extend(st.mailbox)
        self.graph.unmatched.sort(key=lambda m: m.seq)
        return self.graph


def interpret(program: FxProgram, nprocs: int,
              iterations: int = 1) -> CommGraph:
    """Dry-run ``program`` at P ranks and return its communication graph."""
    return _Interp(program, nprocs, iterations).run()
