"""The commprint: a program's traffic, predicted at "compile" time.

The paper's premise is that an Fx program's communication is static —
knowable before it runs.  A commprint makes that concrete: a versioned
manifest of per-phase message counts, payload bytes ``N``, work ``W``,
dependency rounds, and concurrent-connection counts, derived purely
from the dry-run graph of :mod:`.interp`.

Determinism contract: the same (program, P, iterations) always yields
byte-identical manifest JSON.  The manifest therefore carries no
timestamps, no absolute paths, and is serialized with sorted keys;
consecutive identical body phases collapse into one record with a
``repeat`` count, so SOR at 100 iterations prints as one line, not 100.

``stream_bytes`` is the transport's view: payload plus the 24-byte PVM
message header — exactly what a fault-free simulated trace delivers per
direction once TCP/IP+Ethernet framing (58 bytes per data frame) and
ACKs are set aside.  ``repro xray --validate`` holds us to that.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .interp import CommGraph
from .record import MSG_HEADER, SendOp

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifest_json",
    "format_commprint",
]

#: Bump on any change to the manifest's structure or field meanings.
MANIFEST_SCHEMA = 1


def _phase_record(label: str, msgs: List[SendOp],
                  work_by_rank: List[float]) -> dict:
    """One phase's aggregate tables (repeat count filled in later)."""
    edges: Dict[Tuple[int, int, int], List[int]] = {}
    rounds: Dict[int, set] = {}
    for m in msgs:
        key = (m.src, m.dst, m.tag)
        entry = edges.setdefault(key, [0, 0])
        entry[0] += 1
        entry[1] += m.nbytes
        rounds.setdefault(m.round, set()).add((m.src, m.dst))
    pairs = {(src, dst) for src, dst, _tag in edges}
    concurrent = max((len(p) for p in rounds.values()), default=0)
    total_work = sum(work_by_rank)
    return {
        "label": label,
        "repeat": 1,
        "messages": len(msgs),
        "payload_bytes": sum(m.nbytes for m in msgs),
        "stream_bytes": sum(m.nbytes for m in msgs) + MSG_HEADER * len(msgs),
        "fragments": sum(m.fragments for m in msgs),
        "work_units": total_work,
        "max_rank_work_units": max(work_by_rank, default=0.0),
        "rounds": max(rounds, default=0),
        "connections": len(pairs),
        "concurrent_connections": concurrent,
        "edges": [
            {"src": src, "dst": dst, "tag": tag,
             "messages": count, "payload_bytes": nbytes}
            for (src, dst, tag), (count, nbytes) in sorted(edges.items())
        ],
    }


def _same_phase(a: dict, b: dict) -> bool:
    """Phase records identical up to their repeat counts."""
    keys = set(a) - {"repeat"}
    return a["label"] == b["label"] and all(a[k] == b[k] for k in keys)


def build_manifest(graph: CommGraph,
                   pattern: Optional[str] = None) -> dict:
    """The versioned commprint manifest for one dry-run graph."""
    # Bucket every op by its segment; segments appear in driver order.
    if graph.segmented:
        order = [("setup", 0)] + [("body", i) for i in range(graph.iterations)]
    else:
        order = [("run", 0)]
    msgs_by_seg: Dict[Tuple[str, int], List[SendOp]] = {s: [] for s in order}
    work_by_seg: Dict[Tuple[str, int], List[float]] = {
        s: [0.0] * graph.nprocs for s in order
    }
    for m in graph.messages:
        msgs_by_seg[(m.segment, m.seg_index)].append(m)
    for c in graph.computes:
        work_by_seg[(c.segment, c.seg_index)][c.rank] += c.work

    phases: List[dict] = []
    for seg in order:
        record = _phase_record(seg[0], msgs_by_seg[seg], work_by_seg[seg])
        if seg[0] == "setup" and record["messages"] == 0 \
                and record["work_units"] == 0:
            continue  # empty default setup: not a phase
        if phases and _same_phase(phases[-1], record):
            phases[-1]["repeat"] += 1
        else:
            phases.append(record)

    pair_payloads = graph.pair_payloads()
    per_connection = [
        {"src": src, "dst": dst, "messages": count,
         "payload_bytes": pair_payloads[(src, dst)],
         "stream_bytes": pair_payloads[(src, dst)] + MSG_HEADER * count}
        for (src, dst), count in sorted(graph.pair_counts().items())
    ]
    sent = graph.sent_by_rank()
    received = graph.received_by_rank()
    work = graph.work_by_rank()
    total_payload = sum(m.nbytes for m in graph.messages)
    return {
        "schema": MANIFEST_SCHEMA,
        "tool": "repro.commlint",
        "program": graph.program,
        "pattern": pattern,
        "nprocs": graph.nprocs,
        "iterations": graph.iterations,
        "segmented": graph.segmented,
        "msg_header_bytes": MSG_HEADER,
        "phases": phases,
        "per_connection": per_connection,
        "per_rank": [
            {"rank": r, "sent": sent[r], "received": received[r],
             "work_units": work[r]}
            for r in range(graph.nprocs)
        ],
        "totals": {
            "messages": len(graph.messages),
            "payload_bytes": total_payload,
            "stream_bytes": total_payload + MSG_HEADER * len(graph.messages),
            "fragments": sum(m.fragments for m in graph.messages),
            "work_units": sum(work),
            "connections": len(graph.pair_counts()),
        },
    }


def manifest_json(manifest: dict) -> str:
    """The canonical (byte-stable) serialization of a manifest."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def _fmt_bytes(n: int) -> str:
    return f"{n:,} B"


def format_commprint(manifest: dict) -> str:
    """Human-readable commprint summary for ``repro xray``."""
    lines = [
        f"commprint {manifest['program']} @ P={manifest['nprocs']}, "
        f"iterations={manifest['iterations']}"
        + (f", pattern={manifest['pattern']}" if manifest["pattern"] else ""),
        "phases:",
    ]
    for phase in manifest["phases"]:
        lines.append(
            f"  {phase['label']:<6} x{phase['repeat']:<4} "
            f"{phase['messages']:>6} msgs  "
            f"{_fmt_bytes(phase['payload_bytes']):>14} payload  "
            f"{phase['rounds']:>2} rounds  "
            f"{phase['concurrent_connections']:>3} concurrent  "
            f"work {phase['work_units']:,.0f}"
        )
    totals = manifest["totals"]
    lines.append(
        f"totals: {totals['messages']} messages, "
        f"{_fmt_bytes(totals['payload_bytes'])} payload "
        f"({_fmt_bytes(totals['stream_bytes'])} on-stream), "
        f"{totals['connections']} connections, "
        f"work {totals['work_units']:,.0f}"
    )
    return "\n".join(lines)
