"""AST-level commlint rules: what symbolic execution cannot see.

The dry run of :mod:`.interp` explores exactly one control path per
rank — correct only when control flow inside ``rank_body``/``setup``
depends on nothing but the rank, the processor count, and program
parameters.  The Fx compilation model guarantees that for compiled
code; hand-written bodies can break it.  **COMM007** flags the breach:
a branch (``if``/``while``/ternary) whose condition involves

* a value received from the network (``x = yield ctx.recv(...)``),
* a draw from ``random``/``numpy.random``, or
* live simulator state (``ctx.sim``),

inside a function named ``rank_body`` or ``setup``.  Taint propagates
through simple assignments and augmented assignments within the
function, one level deep — the same deliberately-heuristic,
low-false-positive stance as the SIM rules.

These rules run through the ordinary lint pipeline via
``repro lint --comm`` (see :func:`repro.simlint.lint_source`), so they
inherit inline suppression, baselines, and both report formats.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from ..simlint.rules import Finding
from .checks import COMM_RULES

__all__ = ["COMM_RULES", "COMM_AST_RULES", "analyze_comm"]

#: The subset of COMM rules implemented as AST checks.
COMM_AST_RULES: Dict[str, str] = {
    "COMM007": COMM_RULES["COMM007"],
}

_RANK_FUNCS = {"rank_body", "setup"}
_RANDOM_MODULES = {"random"}


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for an attribute/name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_tainted_expr(node: ast.AST, tainted: Set[str],
                     ctx_names: Set[str]) -> bool:
    """Does the expression draw on received data, RNG, or sim state?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Yield):
            return True  # a received value used inline
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
        if isinstance(sub, ast.Attribute):
            dotted = _dotted(sub)
            root = dotted.split(".", 1)[0] if dotted else ""
            if root in ctx_names and ".sim." in f".{dotted}.":
                return True
        if isinstance(sub, ast.Call):
            dotted = _dotted(sub.func)
            root = dotted.split(".", 1)[0] if dotted else ""
            if root in _RANDOM_MODULES or dotted.startswith("numpy.random.") \
                    or dotted.startswith("np.random."):
                return True
    return False


class _BodyAnalyzer:
    """Taint + branch analysis for one rank_body/setup function."""

    def __init__(self, func: ast.FunctionDef, path: str):
        self.func = func
        self.path = path
        self.findings: List[Finding] = []
        args = [a.arg for a in func.args.args]
        # (self, ctx) for methods, (ctx) for free functions.
        self.ctx_names = {a for a in args if a != "self"}

    def run(self) -> List[Finding]:
        tainted = self._collect_taint()
        for node in ast.walk(self.func):
            test = None
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                test = node.test
            if test is None:
                continue
            if _is_tainted_expr(test, tainted, self.ctx_names):
                culprits = sorted(_names_in(test) & tainted)
                detail = (
                    f" (via {', '.join(culprits)})" if culprits
                    else " (via received/random/sim state)"
                )
                self.findings.append(Finding(
                    rule="COMM007", path=self.path,
                    line=node.lineno, col=node.col_offset,
                    message=f"{self.func.name} branches on data the "
                            f"schedule cannot know statically{detail}; "
                            "the communication schedule becomes "
                            "run-dependent",
                ))
        return self.findings

    def _collect_taint(self) -> Set[str]:
        """Names assigned from yields, RNG draws, or sim state."""
        tainted: Set[str] = set()
        # Fixpoint over simple assignments; terminates because the
        # taint set only grows and names are finite.
        grew = True
        while grew:
            grew = False
            for node in ast.walk(self.func):
                targets: List[ast.expr] = []
                value = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if node.value is None:
                        continue
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                if not _is_tainted_expr(value, tainted, self.ctx_names):
                    continue
                for target in targets:
                    for name in _names_in(target):
                        if name not in tainted:
                            tainted.add(name)
                            grew = True
        return tainted


def analyze_comm(tree: ast.AST, path: str) -> List[Finding]:
    """COMM AST findings for one parsed module."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name in _RANK_FUNCS:
            findings.extend(_BodyAnalyzer(node, path).run())
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
