"""commlint: static SPMD communication analysis (``repro xray``).

The paper's QoS model assumes an Fx program's traffic is knowable at
compile time.  This package makes the claim operational for our
:class:`~repro.fx.program.FxProgram` model:

* :mod:`.record` / :mod:`.interp` — an abstract interpreter that
  dry-runs every rank's generators against a recording ``FxContext``
  stand-in (no DES, no network) and reconstructs the per-phase static
  communication graph: (src, dst, tag, bytes) edges, dependency rounds,
  compute spans;
* :mod:`.checks` — the schedule checker: deadlocks, unmatched sends,
  tag mismatches, self-sends, out-of-range ranks, divergent
  collectives, wildcard races — ``COMM001``..``COMM008`` findings
  through the simlint report/baseline machinery;
* :mod:`.astrules` — AST rules for what symbolic execution cannot see
  (``repro lint --comm``);
* :mod:`.commprint` — the versioned static traffic manifest, and the
  purely-static QoS characterization feed;
* :mod:`.validate` — predict-then-simulate: the commprint must match
  the captured trace byte-for-byte on delivered stream bytes and
  message counts.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass, field
from typing import List, Optional

from ..fx.program import FxProgram
from ..simlint.engine import LintResult
from ..simlint.rules import Finding
from .astrules import COMM_AST_RULES, analyze_comm
from .checks import COMM_RULES, as_lint_result, check_graph
from .commprint import (
    MANIFEST_SCHEMA,
    build_manifest,
    format_commprint,
    manifest_json,
)
from .interp import CommGraph, interpret
from .record import XrayError
from .validate import ValidationReport, format_validation, validate_program

__all__ = [
    "COMM_RULES",
    "COMM_AST_RULES",
    "MANIFEST_SCHEMA",
    "CommGraph",
    "Finding",
    "XrayError",
    "XrayResult",
    "ValidationReport",
    "analyze_comm",
    "as_lint_result",
    "build_manifest",
    "check_graph",
    "format_commprint",
    "format_validation",
    "interpret",
    "manifest_json",
    "resolve_program",
    "static_characterization",
    "validate_program",
    "xray",
]


@dataclass
class XrayResult:
    """Everything one ``repro xray`` pass produces."""

    program: FxProgram
    graph: CommGraph
    manifest: dict
    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def lint_result(self) -> LintResult:
        """The findings in the lint engine's container (JSON/baseline)."""
        return as_lint_result(self.findings)


def xray(program: FxProgram, nprocs: int, iterations: int = 1) -> XrayResult:
    """Dry-run ``program``, check its schedule, and build its commprint."""
    graph = interpret(program, nprocs, iterations)
    pattern = str(program.pattern) if program.pattern is not None else None
    return XrayResult(
        program=program,
        graph=graph,
        manifest=build_manifest(graph, pattern=pattern),
        findings=check_graph(graph),
    )


def static_characterization(program: FxProgram, work_rate: float,
                            iterations: int = 1):
    """A purely-static :class:`~repro.core.qos.TrafficCharacterization`.

    Feeds dry-run commprint manifests into
    :func:`repro.core.qos.characterize_commprint` — the QoS negotiation
    runs without a simulation (or hand-written metadata) in the loop.
    """
    from ..core.qos import characterize_commprint

    def manifest_for(P: int) -> dict:
        return xray(program, P, iterations).manifest

    return characterize_commprint(
        program.name, program.pattern, manifest_for, work_rate
    )


def resolve_program(spec: str, program_kwargs: Optional[dict] = None) -> FxProgram:
    """Resolve a CLI program spec to an instance.

    Accepts a registry name (``sor``) or ``path/to/file.py:ClassName``
    for out-of-registry programs — the commlint fixtures under
    ``examples/`` are addressed this way.
    """
    if ":" in spec:
        path, _, attr = spec.rpartition(":")
        module_spec = importlib.util.spec_from_file_location(
            "repro_xray_target", path
        )
        if module_spec is None or module_spec.loader is None:
            raise ValueError(f"cannot load module from {path!r}")
        module = importlib.util.module_from_spec(module_spec)
        try:
            module_spec.loader.exec_module(module)
        except (OSError, SyntaxError) as exc:
            raise ValueError(f"cannot load {path!r}: {exc}") from exc
        try:
            cls = getattr(module, attr)
        except AttributeError:
            raise ValueError(f"{path!r} defines no {attr!r}") from None
        program = cls(**(program_kwargs or {}))
        if not isinstance(program, FxProgram):
            raise ValueError(f"{spec!r} is not an FxProgram")
        return program
    from ..programs import make_program

    try:
        return make_program(spec, **(program_kwargs or {}))
    except KeyError as exc:  # str(KeyError) wraps the message in quotes
        raise ValueError(exc.args[0] if exc.args else str(exc)) from None
