"""Recording stand-ins for the Fx runtime (the xray "dry run" layer).

:class:`RecordingContext` mirrors :class:`~repro.fx.runtime.FxContext`'s
API surface — ``rank``/``nprocs``/``compute``/``send``/``recv``/
``barrier`` — but touches no simulator and no network.  ``compute``
returns a token carrying the work units, ``send`` records the message
and returns an already-exhausted generator (so ``yield from`` costs one
resume, like the real send's overhead sleep), and ``recv``/``barrier``
return wait tokens the abstract interpreter resolves.

Two deliberate departures from the live context:

* invalid arguments (self-send, out-of-range ranks, bad fragment
  counts) are recorded as :class:`Violation` entries instead of raised,
  so one xray pass reports *every* defect in a schedule rather than
  dying on the first;
* ``ctx.sim`` is a :class:`_StaticSim` stub pinned at t=0 — a body that
  branches on simulation time is data-dependent by definition, which is
  exactly what the COMM007 AST rule exists to flag.

Timing parity that matters for validation: the live
``VirtualMachine.send`` increments ``messages_sent`` at *call* time, so
``RecordingContext.send`` records its message at call time too, and the
live ``ctx.compute`` appends to the phase log when called, not when the
yielded delay elapses.  Matching those instants keeps the static
op-stream ordered exactly like the simulated one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..pvm.message import MSG_HEADER

__all__ = [
    "MSG_HEADER",
    "XrayError",
    "Site",
    "call_site",
    "ComputeOp",
    "SendOp",
    "RecvOp",
    "BarrierOp",
    "Violation",
    "ComputeToken",
    "RecvToken",
    "BarrierToken",
    "RecordingContext",
]


class XrayError(RuntimeError):
    """The program under analysis cannot be interpreted statically."""


@dataclass(frozen=True)
class Site:
    """Source location of a communication call (for findings)."""

    file: str
    line: int


_THIS_FILE = __file__


def call_site() -> Site:
    """The nearest stack frame outside this module.

    Collectives in :mod:`repro.fx.patterns` call ``ctx.send`` on the
    program's behalf; walking past this module (but no further) pins the
    finding on the line that actually issued the operation.
    """
    depth = 1
    while True:
        frame = sys._getframe(depth)
        if frame.f_code.co_filename != _THIS_FILE:
            return Site(frame.f_code.co_filename, frame.f_lineno)
        depth += 1


#: Segment label for ops recorded outside the default run decomposition.
SEG_RUN = "run"


@dataclass
class ComputeOp:
    """One ``ctx.compute(work)`` span."""

    rank: int
    work: float
    site: Site
    segment: str = SEG_RUN
    seg_index: int = 0


@dataclass
class SendOp:
    """One message: recorded at send-call time, delivered on match.

    ``round`` is a dependency level (sender's level + 1 at send time;
    receivers raise their level to the message's round), so rounds
    reflect the true synchronization depth of the schedule, not the
    textual order of library calls.
    """

    seq: int
    src: int
    dst: int
    tag: int
    nbytes: int
    fragments: int
    site: Site
    segment: str = SEG_RUN
    seg_index: int = 0
    round: int = 1
    delivered: bool = False
    recv_seg: Optional[Tuple[str, int]] = None

    @property
    def stream_bytes(self) -> int:
        """Bytes the transport carries: payload plus the PVM header."""
        return self.nbytes + MSG_HEADER


@dataclass
class RecvOp:
    """One ``ctx.recv(src, tag)`` wait."""

    rank: int
    src: Optional[int]
    tag: Optional[int]
    site: Site
    segment: str = SEG_RUN
    seg_index: int = 0
    matched_seq: Optional[int] = None


@dataclass
class BarrierOp:
    """One ``ctx.barrier()`` arrival."""

    rank: int
    site: Site
    segment: str = SEG_RUN
    seg_index: int = 0


@dataclass
class Violation:
    """An argument error the live runtime would have raised."""

    code: str
    rank: int
    message: str
    site: Site


class ComputeToken:
    """Yielded by the recording ``compute``; the interpreter skips it."""

    __slots__ = ("op",)

    def __init__(self, op: ComputeOp):
        self.op = op


class RecvToken:
    """Yielded by the recording ``recv``; resolved against a mailbox.

    ``invalid`` receives (out-of-range source) resume immediately with
    ``None`` — the defect is already recorded as a violation, and
    blocking on it would fabricate a second, phantom deadlock finding.
    """

    __slots__ = ("op", "invalid")

    def __init__(self, op: RecvOp, invalid: bool = False):
        self.op = op
        self.invalid = invalid


class BarrierToken:
    """Yielded by the recording ``barrier``; released when all arrive."""

    __slots__ = ("op",)

    def __init__(self, op: BarrierOp):
        self.op = op


def _spent_generator() -> Iterator[None]:
    """What the recording ``send`` returns for ``yield from``."""
    return
    yield  # pragma: no cover


class _StaticSim:
    """``ctx.sim`` stand-in: time is pinned at zero during a dry run."""

    now = 0.0

    def __getattr__(self, name: str):
        raise XrayError(
            f"rank body touched ctx.sim.{name}: live simulator state is "
            "not available during static analysis"
        )


class RecordingContext:
    """The per-rank dry-run view handed to ``rank_body``/``setup``."""

    def __init__(self, interp, rank: int, nprocs: int):
        self._interp = interp
        self.rank = rank
        self.nprocs = nprocs
        self.sim = _StaticSim()
        # Live-context attributes a body could legitimately read.
        self.task = None
        self.work_model = None
        self.runtime = None

    # -- local computation ------------------------------------------------
    def compute(self, work: float) -> ComputeToken:
        site = call_site()
        if work < 0:
            self._interp.record_violation(Violation(
                "COMM005", self.rank,
                f"rank {self.rank} computes negative work {work!r}", site,
            ))
            work = 0.0
        op = ComputeOp(rank=self.rank, work=float(work), site=site)
        self._interp.record_compute(op)
        return ComputeToken(op)

    # -- point-to-point ---------------------------------------------------
    def send(self, dst_rank: int, nbytes: int, tag: int = 0,
             obj=None, fragments: int = 1):
        site = call_site()
        ok = True
        if not 0 <= dst_rank < self.nprocs:
            self._interp.record_violation(Violation(
                "COMM005", self.rank,
                f"rank {self.rank} sends to out-of-range rank {dst_rank} "
                f"(P={self.nprocs})", site,
            ))
            ok = False
        elif dst_rank == self.rank:
            self._interp.record_violation(Violation(
                "COMM004", self.rank,
                f"rank {self.rank} sends to itself", site,
            ))
            ok = False
        if fragments < 1:
            self._interp.record_violation(Violation(
                "COMM005", self.rank,
                f"rank {self.rank} packs an invalid fragment count "
                f"{fragments}", site,
            ))
            fragments = 1
        if nbytes < 0:
            self._interp.record_violation(Violation(
                "COMM005", self.rank,
                f"rank {self.rank} sends negative payload {nbytes}", site,
            ))
            ok = False
        if ok:
            self._interp.record_send(
                src=self.rank, dst=dst_rank, tag=tag, nbytes=int(nbytes),
                fragments=int(fragments), site=site,
            )
        return _spent_generator()

    def recv(self, src_rank: Optional[int] = None,
             tag: Optional[int] = None) -> RecvToken:
        site = call_site()
        invalid = False
        if src_rank is not None and not 0 <= src_rank < self.nprocs:
            self._interp.record_violation(Violation(
                "COMM005", self.rank,
                f"rank {self.rank} receives from out-of-range rank "
                f"{src_rank} (P={self.nprocs})", site,
            ))
            invalid = True
        op = RecvOp(rank=self.rank, src=src_rank, tag=tag, site=site)
        self._interp.record_recv(op)
        return RecvToken(op, invalid=invalid)

    # -- out-of-band barrier ----------------------------------------------
    def barrier(self) -> BarrierToken:
        op = BarrierOp(rank=self.rank, site=call_site())
        self._interp.record_barrier(op)
        return BarrierToken(op)
