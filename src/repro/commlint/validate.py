"""Prediction vs. simulation: the ``repro xray --validate`` contract.

The commprint predicts what the *application* hands the transport; the
simulated trace records what the *wire* carried.  In a fault-free run
the two are related exactly:

    per-direction delivered stream bytes
        = sum over TCP data frames (retx == 0) of (frame size - 58)
        = sum over predicted messages of (payload + 24-byte PVM header)

where 58 = 20 (IP) + 20 (TCP) + 18 (Ethernet framing) per data frame.
Everything else on the wire — per-frame header overhead, pure ACKs,
daemon keepalive UDP — is transport/daemon bookkeeping the commprint
does not (and should not) predict; the report accounts for it
separately rather than excusing it silently.

Message *counts* are checked against the PVM per-task counters
(``messages_sent`` / ``messages_received``), which the recording
context's call-time semantics mirror one-for-one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..capture.trace import KIND_TCP_ACK, KIND_TCP_DATA, KIND_UDP
from ..fx.compute import WorkModel
from ..fx.program import FxProgram
from ..fx.runtime import FxCluster, FxRuntime
from ..net.frame import ETHERNET_OVERHEAD
from ..transport.headers import IP_HEADER, TCP_HEADER
from .interp import CommGraph, interpret

__all__ = ["ValidationReport", "validate_program", "format_validation"]

#: Per-TCP-data-frame framing bytes the trace records beyond the stream.
FRAME_OVERHEAD = IP_HEADER + TCP_HEADER + ETHERNET_OVERHEAD


@dataclass
class DirectionCheck:
    """One ordered (src, dst) rank pair's byte and count comparison."""

    src: int
    dst: int
    predicted_bytes: int
    observed_bytes: int
    predicted_msgs: int

    @property
    def ok(self) -> bool:
        return self.predicted_bytes == self.observed_bytes


@dataclass
class ValidationReport:
    """Outcome of one predict-then-simulate comparison."""

    program: str
    nprocs: int
    iterations: int
    seed: int
    packets: int
    directions: List[DirectionCheck] = field(default_factory=list)
    predicted_sent: List[int] = field(default_factory=list)
    observed_sent: List[int] = field(default_factory=list)
    predicted_received: List[int] = field(default_factory=list)
    observed_received: List[int] = field(default_factory=list)
    #: Wire bytes the commprint intentionally does not predict.
    overhead: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_program(
    program: FxProgram,
    nprocs: int,
    iterations: int,
    seed: int = 0,
    work_model: Optional[WorkModel] = None,
    graph: Optional[CommGraph] = None,
) -> ValidationReport:
    """Simulate ``program`` and hold the commprint to the trace.

    The caller is expected to have checked the schedule first: a
    deadlocked program would simply run the simulator dry mid-schedule
    and fail every comparison below.
    """
    if graph is None:
        graph = interpret(program, nprocs, iterations)
    cluster = FxCluster(n_machines=nprocs + 1, seed=seed)
    if work_model is None:
        work_model = WorkModel(rate=1e6, rng=random.Random(seed))
    runtime = FxRuntime(cluster, nprocs, work_model)
    trace = runtime.execute(program, iterations)

    report = ValidationReport(
        program=program.name, nprocs=nprocs, iterations=iterations,
        seed=seed, packets=len(trace),
    )

    # Per-direction stream bytes: data frames minus fixed framing.
    kinds = trace.kinds
    retx = trace.retransmits
    sizes = trace.sizes
    srcs = trace.srcs
    dsts = trace.dsts
    data_mask = (kinds == KIND_TCP_DATA) & (retx == 0)
    data_frames = int(data_mask.sum())
    observed: Dict[Tuple[int, int], int] = {}
    for i in np.nonzero(data_mask)[0]:
        key = (int(srcs[i]), int(dsts[i]))
        observed[key] = observed.get(key, 0) + int(sizes[i]) - FRAME_OVERHEAD

    predicted: Dict[Tuple[int, int], int] = {}
    predicted_counts: Dict[Tuple[int, int], int] = {}
    for m in graph.messages:
        machine_key = (runtime.machines[m.src], runtime.machines[m.dst])
        predicted[machine_key] = (
            predicted.get(machine_key, 0) + m.stream_bytes
        )
        predicted_counts[machine_key] = (
            predicted_counts.get(machine_key, 0) + 1
        )

    for key in sorted(set(predicted) | set(observed)):
        check = DirectionCheck(
            src=key[0], dst=key[1],
            predicted_bytes=predicted.get(key, 0),
            observed_bytes=observed.get(key, 0),
            predicted_msgs=predicted_counts.get(key, 0),
        )
        report.directions.append(check)
        if not check.ok:
            report.errors.append(
                f"direction {key[0]}->{key[1]}: predicted "
                f"{check.predicted_bytes} stream bytes, trace delivered "
                f"{check.observed_bytes}"
            )

    # Message counts against the PVM per-task counters.
    report.predicted_sent = graph.sent_by_rank()
    report.predicted_received = graph.received_by_rank()
    report.observed_sent = [t.messages_sent for t in runtime.tasks]
    report.observed_received = [t.messages_received for t in runtime.tasks]
    if report.predicted_sent != report.observed_sent:
        report.errors.append(
            f"messages sent per rank: predicted {report.predicted_sent}, "
            f"simulated {report.observed_sent}"
        )
    if report.predicted_received != report.observed_received:
        report.errors.append(
            f"messages received per rank: predicted "
            f"{report.predicted_received}, "
            f"simulated {report.observed_received}"
        )

    # Overhead the prediction excludes by design, accounted explicitly.
    ack_mask = kinds == KIND_TCP_ACK
    udp_mask = kinds == KIND_UDP
    retx_mask = (kinds == KIND_TCP_DATA) & (retx > 0)
    report.overhead = {
        "data_frames": data_frames,
        "frame_header_bytes": data_frames * FRAME_OVERHEAD,
        "ack_frames": int(ack_mask.sum()),
        "ack_bytes": int(sizes[ack_mask].sum()),
        "udp_frames": int(udp_mask.sum()),
        "udp_bytes": int(sizes[udp_mask].sum()),
        "retransmitted_frames": int(retx_mask.sum()),
    }
    return report


def format_validation(report: ValidationReport) -> str:
    """Human-readable validation summary for ``repro xray --validate``."""
    lines = [
        f"validate {report.program} @ P={report.nprocs}, "
        f"iterations={report.iterations}, seed={report.seed}: "
        f"{report.packets} packets simulated",
    ]
    total_pred = sum(d.predicted_bytes for d in report.directions)
    total_obs = sum(d.observed_bytes for d in report.directions)
    matched = sum(1 for d in report.directions if d.ok)
    lines.append(
        f"  stream bytes: {matched}/{len(report.directions)} directions "
        f"match exactly (predicted {total_pred:,} B, observed "
        f"{total_obs:,} B)"
    )
    lines.append(
        f"  messages: sent {sum(report.predicted_sent)} predicted / "
        f"{sum(report.observed_sent)} simulated, received "
        f"{sum(report.predicted_received)} predicted / "
        f"{sum(report.observed_received)} simulated"
    )
    oh = report.overhead
    lines.append(
        f"  excluded overhead: {oh['frame_header_bytes']:,} B framing on "
        f"{oh['data_frames']} data frames, {oh['ack_bytes']:,} B in "
        f"{oh['ack_frames']} ACKs, {oh['udp_bytes']:,} B in "
        f"{oh['udp_frames']} UDP frames, "
        f"{oh['retransmitted_frames']} retransmissions"
    )
    for err in report.errors:
        lines.append(f"  MISMATCH: {err}")
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
