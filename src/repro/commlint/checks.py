"""The schedule checker: COMM0xx findings over a dry-run graph.

Rule IDs (stable, baseline-able through the simlint machinery):

* **COMM001** — the schedule stalls: ranks block forever on receives or
  barriers (cyclic synchronous waits are called out explicitly).
* **COMM002** — unmatched send: a message no receive ever consumes.
* **COMM003** — tag mismatch: a rank blocks receiving (src, tag) while
  a message from that very source waits with a different tag.
* **COMM004** — send to self (the live runtime raises on this).
* **COMM005** — out-of-range rank or invalid send/compute argument.
* **COMM006** — rank-divergent collective order: ranks arrive at
  barriers a different number of times, or some ranks wait at a barrier
  that others have already run past.
* **COMM007** — *(AST rule, :mod:`.astrules`)* data-dependent branching
  on non-rank state inside ``rank_body``/``setup``.
* **COMM008** — message race: a wildcard receive matched while messages
  from several sources were queued, so the winner is timing-dependent.

Graph findings are reported as :class:`repro.simlint.Finding` objects
grouped into the engine's :class:`FileReport`/:class:`LintResult`
containers, so ``format_json``, ``--stats``, and the baseline
round-trip all work on them unchanged.
"""

from __future__ import annotations

import linecache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..simlint.engine import FileReport, LintResult, _fingerprint
from ..simlint.rules import Finding
from .interp import BlockedRank, CommGraph
from .record import RecvOp, SendOp, Site

__all__ = ["COMM_RULES", "check_graph", "as_lint_result"]

#: Rule ID -> one-line summary (merged into lint legends and --stats).
COMM_RULES: Dict[str, str] = {
    "COMM001": "communication schedule stalls (deadlock)",
    "COMM002": "sent message is never received",
    "COMM003": "send/recv tag mismatch",
    "COMM004": "rank sends to itself",
    "COMM005": "out-of-range rank or invalid argument",
    "COMM006": "rank-divergent collective order",
    "COMM007": "data-dependent branch on non-rank state in rank body",
    "COMM008": "wildcard receive races multiple pending senders",
}


def _display(path: str) -> str:
    try:
        return str(Path(path).relative_to(Path.cwd()))
    except ValueError:
        return path


def _finding(rule: str, site: Site, message: str) -> Finding:
    path = _display(site.file)
    line_text = linecache.getline(site.file, site.line)
    return Finding(
        rule=rule, path=path, line=site.line, col=0, message=message,
        fingerprint=_fingerprint(rule, path, line_text),
    )


def _wait_cycle(blocked: List[BlockedRank]) -> Optional[List[int]]:
    """A cycle in the recv wait-for graph (rank -> awaited source)."""
    waits = {
        b.rank: b.op.src for b in blocked
        if b.kind == "recv" and isinstance(b.op, RecvOp)
        and b.op.src is not None
    }
    for start in sorted(waits):
        seen: List[int] = []
        rank: Optional[int] = start
        while rank is not None and rank not in seen:
            seen.append(rank)
            rank = waits.get(rank)
        if rank is not None:
            return seen[seen.index(rank):] + [rank]
    return None


def check_graph(graph: CommGraph) -> List[Finding]:
    """Every schedule defect the dry run exposed, as findings."""
    findings: List[Finding] = []

    # Argument violations recorded during interpretation.
    for violation in graph.violations:
        findings.append(_finding(violation.code, violation.site,
                                 violation.message))

    # Message races on wildcard receives.
    seen_race_sites = set()
    for race in graph.races:
        key = (race.recv.site.file, race.recv.site.line)
        if key in seen_race_sites:
            continue
        seen_race_sites.add(key)
        findings.append(_finding(
            "COMM008", race.recv.site,
            f"rank {race.recv.rank} receives with no source filter while "
            f"messages from ranks {race.sources} are pending; the match "
            "depends on arrival timing",
        ))

    if graph.deadlocked:
        findings.extend(_deadlock_findings(graph))

    # Unmatched sends: messages still in a mailbox when the run ended.
    unmatched: Dict[Tuple[str, int, int, int, int], int] = {}
    for m in graph.unmatched:
        key = (m.site.file, m.site.line, m.src, m.dst, m.tag)
        unmatched[key] = unmatched.get(key, 0) + 1
    for (file, line, src, dst, tag), count in sorted(unmatched.items()):
        noun = "message" if count == 1 else "messages"
        findings.append(_finding(
            "COMM002", Site(file, line),
            f"{count} {noun} from rank {src} to rank {dst} (tag {tag}) "
            "never received",
        ))

    # Collective-order divergence visible at clean termination: ranks
    # arrived at barriers a different number of times.
    if not graph.deadlocked and len(set(graph.barrier_counts)) > 1:
        counts = ", ".join(
            f"rank {r}: {n}" for r, n in enumerate(graph.barrier_counts)
        )
        site = graph.barriers[0].site if graph.barriers else Site("<program>", 0)
        findings.append(_finding(
            "COMM006", site,
            f"ranks arrive at barriers a divergent number of times ({counts})",
        ))

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def _deadlock_findings(graph: CommGraph) -> List[Finding]:
    findings: List[Finding] = []
    recv_blocked = [b for b in graph.blocked if b.kind == "recv"]
    barrier_blocked = [b for b in graph.blocked if b.kind == "barrier"]

    # Tag mismatches: the awaited source did send — with the wrong tag.
    msgs_by_dst: Dict[int, List[SendOp]] = {}
    for m in graph.unmatched:
        msgs_by_dst.setdefault(m.dst, []).append(m)
    for b in recv_blocked:
        op = b.op
        if not isinstance(op, RecvOp) or op.tag is None:
            continue
        offered = sorted({
            m.tag for m in msgs_by_dst.get(b.rank, [])
            if (op.src is None or m.src == op.src) and m.tag != op.tag
        })
        if offered:
            src_desc = ("any rank" if op.src is None else f"rank {op.src}")
            findings.append(_finding(
                "COMM003", op.site,
                f"rank {b.rank} waits for tag {op.tag} from {src_desc}, "
                f"but the pending {'message carries' if len(offered) == 1 else 'messages carry'} "
                f"tag{'s' if len(offered) > 1 else ''} "
                f"{', '.join(str(t) for t in offered)}",
            ))

    # The stall itself, with the wait-for cycle when one exists.
    if graph.blocked:
        cycle = _wait_cycle(graph.blocked)
        stalled = ", ".join(
            f"rank {b.rank} ({b.kind})" for b in graph.blocked
        )
        if cycle is not None:
            shape = " -> ".join(f"rank {r}" for r in cycle)
            detail = f"cyclic synchronous waits: {shape}"
        else:
            detail = f"stalled ranks: {stalled}"
        anchor = graph.blocked[0].op.site
        findings.append(_finding(
            "COMM001", anchor,
            f"communication schedule stalls after "
            f"{len(graph.finished_ranks)} of {graph.nprocs} ranks finish; "
            f"{detail}",
        ))

    # Barrier divergence: some ranks wait at a barrier others ran past.
    if barrier_blocked and len(barrier_blocked) < graph.nprocs:
        absent = sorted(
            set(range(graph.nprocs)) - {b.rank for b in barrier_blocked}
        )
        findings.append(_finding(
            "COMM006", barrier_blocked[0].op.site,
            f"rank{'s' if len(barrier_blocked) > 1 else ''} "
            f"{', '.join(str(b.rank) for b in barrier_blocked)} wait at a "
            f"barrier that rank{'s' if len(absent) > 1 else ''} "
            f"{', '.join(str(r) for r in absent)} never reach",
        ))
    return findings


def as_lint_result(findings: List[Finding]) -> LintResult:
    """Package graph findings the way the lint engine would."""
    result = LintResult()
    by_path: Dict[str, List[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    for path in sorted(by_path):
        result.reports.append(
            FileReport(path=path, findings=by_path[path])
        )
    return result
