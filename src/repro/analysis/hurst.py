"""Self-similarity estimation (Hurst exponent).

The paper positions parallel-program traffic against the *self-similar*
VBR video traffic of Garrett & Willinger: media streams show long-range
dependence (H well above 0.5) while Fx traffic is periodic, not
self-similar.  Two classic estimators are provided so the baseline
comparison benches can make that contrast quantitative.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["hurst_aggregated_variance", "hurst_rs"]


def _block_means(x: np.ndarray, m: int) -> np.ndarray:
    n = (len(x) // m) * m
    return x[:n].reshape(-1, m).mean(axis=1)


def hurst_aggregated_variance(
    x: np.ndarray,
    min_block: int = 4,
    n_scales: int = 12,
) -> float:
    """Aggregated-variance Hurst estimate.

    For block sizes m, Var(X^(m)) ~ m^(2H-2); the slope of the log-log
    plot gives H.  H ≈ 0.5 for short-range-dependent series, H -> 1 for
    strongly self-similar ones.
    """
    x = np.asarray(x, dtype=np.float64)
    if len(x) < min_block * 8:
        raise ValueError(f"series too short for variance scaling: {len(x)}")
    max_block = len(x) // 8
    ms = np.unique(
        np.geomspace(min_block, max(max_block, min_block + 1), n_scales).astype(int)
    )
    log_m, log_v = [], []
    for m in ms:
        means = _block_means(x, m)
        if len(means) < 4:
            continue
        v = means.var()
        if v > 0:
            log_m.append(np.log(m))
            log_v.append(np.log(v))
    if len(log_m) < 3:
        raise ValueError("not enough usable scales for the variance fit")
    slope = np.polyfit(log_m, log_v, 1)[0]
    h = 1.0 + slope / 2.0
    return float(np.clip(h, 0.0, 1.0))


def hurst_rs(x: np.ndarray, min_block: int = 16, n_scales: int = 10) -> float:
    """Rescaled-range (R/S) Hurst estimate.

    E[R/S](m) ~ m^H: the slope of log(R/S) against log(m).
    """
    x = np.asarray(x, dtype=np.float64)
    if len(x) < min_block * 4:
        raise ValueError(f"series too short for R/S: {len(x)}")
    max_block = len(x) // 4
    ms = np.unique(
        np.geomspace(min_block, max(max_block, min_block + 1), n_scales).astype(int)
    )
    log_m, log_rs = [], []
    for m in ms:
        n_blocks = len(x) // m
        if n_blocks < 2:
            continue
        blocks = x[: n_blocks * m].reshape(n_blocks, m)
        devs = blocks - blocks.mean(axis=1, keepdims=True)
        cums = devs.cumsum(axis=1)
        r = cums.max(axis=1) - cums.min(axis=1)
        s = blocks.std(axis=1)
        valid = s > 0
        if valid.sum() == 0:
            continue
        rs = (r[valid] / s[valid]).mean()
        if rs > 0:
            log_m.append(np.log(m))
            log_rs.append(np.log(rs))
    if len(log_m) < 3:
        raise ValueError("not enough usable scales for the R/S fit")
    slope = np.polyfit(log_m, log_rs, 1)[0]
    return float(np.clip(slope, 0.0, 1.0))
