"""Per-connection aggregate views of a trace.

The paper's §7.1 stresses that collective patterns "may not necessarily
be characterized by the behavior of a single connection": which
connections carry traffic, and how much, is itself the signature of the
pattern.  :func:`traffic_matrix` recovers the Figure-1 connectivity
structure straight from a measured trace.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..capture import PacketTrace

__all__ = ["traffic_matrix", "connection_table", "active_connections"]


def traffic_matrix(trace: PacketTrace, n_hosts: Optional[int] = None
                   ) -> np.ndarray:
    """Bytes sent from host *i* to host *j*, as an (n, n) matrix."""
    if n_hosts is None:
        hosts = trace.hosts()
        n_hosts = int(hosts.max()) + 1 if len(hosts) else 0
    m = np.zeros((n_hosts, n_hosts), dtype=np.int64)
    if len(trace) == 0:
        return m
    np.add.at(m, (trace.srcs, trace.dsts), trace.sizes)
    return m


def connection_table(trace: PacketTrace) -> List[Tuple[int, int, int, int]]:
    """Per-connection (src, dst, packets, bytes), heaviest first."""
    rows = []
    for src, dst in trace.connections():
        conn = trace.connection(src, dst)
        rows.append((src, dst, len(conn), conn.total_bytes))
    rows.sort(key=lambda r: r[3], reverse=True)
    return rows


def active_connections(trace: PacketTrace, min_bytes: int = 0
                       ) -> List[Tuple[int, int]]:
    """(src, dst) pairs carrying more than ``min_bytes``."""
    return [
        (s, d) for s, d, _n, total in connection_table(trace)
        if total > min_bytes
    ]
