"""Time-domain periodicity analysis: autocorrelation cross-checks.

The paper reads periodicity off power spectra; the autocorrelation of
the binned bandwidth provides an independent, time-domain estimate of
the same period.  The two agreeing is a useful internal consistency
check for the reproduction (and a nice way to catch spectral-leakage
artifacts).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .bandwidth import BandwidthSeries

__all__ = ["autocorrelation", "dominant_period", "periodicity_strength"]


def autocorrelation(series: BandwidthSeries, max_lag: Optional[int] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Normalized autocorrelation of a bandwidth signal.

    Returns (lags_seconds, r) for lags 0..max_lag (default: half the
    series).  r[0] == 1 for any non-constant signal.
    """
    x = series.values.astype(np.float64)
    n = len(x)
    if n < 4:
        raise ValueError(f"series too short for autocorrelation: {n}")
    if max_lag is None:
        max_lag = n // 2
    max_lag = min(max_lag, n - 1)
    x = x - x.mean()
    var = np.dot(x, x)
    if var == 0:
        # constant signal: define r = 1 at lag 0, 0 elsewhere
        r = np.zeros(max_lag + 1)
        r[0] = 1.0
        return np.arange(max_lag + 1) * series.dt, r
    # FFT-based autocorrelation
    nfft = 1 << int(np.ceil(np.log2(2 * n)))
    spec = np.fft.rfft(x, nfft)
    acf = np.fft.irfft(spec * np.conj(spec), nfft)[: max_lag + 1]
    r = acf / var
    lags = np.arange(max_lag + 1) * series.dt
    return lags, r


def dominant_period(series: BandwidthSeries,
                    min_period: Optional[float] = None,
                    max_period: Optional[float] = None,
                    min_strength: float = 0.15,
                    tolerance: float = 0.95) -> float:
    """The period (seconds) of the fundamental autocorrelation peak.

    Searches local maxima of the autocorrelation between ``min_period``
    (default: 2 samples) and ``max_period`` (default: half the series).
    A strictly periodic signal correlates equally at every multiple of
    its period, so among peaks within ``tolerance`` of the strongest the
    *smallest lag* wins — the fundamental, not a harmonic multiple.
    Peaks below ``min_strength`` are noise; returns 0.0 for aperiodic
    signals.
    """
    lags, r = autocorrelation(series)
    if min_period is None:
        min_period = 2 * series.dt
    if max_period is None:
        max_period = lags[-1]
    lo = np.searchsorted(lags, min_period)
    hi = np.searchsorted(lags, max_period, side="right")
    if hi - lo < 3:
        return 0.0
    seg = r[lo:hi]
    interior = np.arange(1, len(seg) - 1)
    is_max = (seg[interior] >= seg[interior - 1]) & (seg[interior] > seg[interior + 1])
    candidates = interior[is_max]
    candidates = candidates[seg[candidates] >= min_strength]
    if len(candidates) == 0:
        return 0.0
    strongest = seg[candidates].max()
    near_best = candidates[seg[candidates] >= tolerance * strongest]
    best = near_best.min()
    return float(lags[lo + best])


def periodicity_strength(series: BandwidthSeries, period: float) -> float:
    """Autocorrelation value at the given period's lag (clipped at 0).

    Near 1 for strongly periodic signals, near 0 for noise.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    lags, r = autocorrelation(series)
    idx = int(round(period / series.dt))
    if idx >= len(r):
        raise ValueError(
            f"period {period}s beyond autocorrelation range {lags[-1]}s"
        )
    return float(max(0.0, r[idx]))
