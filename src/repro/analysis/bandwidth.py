"""Bandwidth analysis (paper Figures 5, 6, 10).

Two estimators, both taken from the paper's methodology:

* :func:`sliding_window_bandwidth` — the 10 ms window that slides one
  packet at a time (Figure 6's "instantaneous bandwidth"); implemented
  with ``cumsum`` + ``searchsorted``, no per-packet Python loop;
* :func:`binned_bandwidth` — the static 10 ms intervals used as the
  evenly-spaced input for the power spectra ("a close approximation to
  the sliding window bandwidth", §6.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..capture import PacketTrace

__all__ = [
    "average_bandwidth",
    "sliding_window_bandwidth",
    "binned_bandwidth",
    "BandwidthSeries",
]

KB = 1024.0


class BandwidthSeries:
    """An evenly-sampled bandwidth signal in KB/s."""

    def __init__(self, t0: float, dt: float, values: np.ndarray):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.t0 = t0
        self.dt = dt
        self.values = np.asarray(values, dtype=np.float64)

    @property
    def times(self) -> np.ndarray:
        return self.t0 + self.dt * np.arange(len(self.values))

    @property
    def sample_rate(self) -> float:
        return 1.0 / self.dt

    @property
    def duration(self) -> float:
        return self.dt * len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def slice(self, t0: float, t1: float) -> "BandwidthSeries":
        """The sub-series covering [t0, t1).

        Only whole samples are kept: the first sample at or after ``t0``
        through the last sample starting before ``t1``.  A partially
        covered sample at either edge is excluded, so the slice's byte
        total can be smaller than the bytes falling in [t0, t1).
        """
        i0 = max(0, int(np.ceil((t0 - self.t0) / self.dt)))
        i1 = min(len(self.values), int(np.ceil((t1 - self.t0) / self.dt)))
        return BandwidthSeries(self.t0 + i0 * self.dt, self.dt, self.values[i0:i1])

    def mean(self) -> float:
        return float(self.values.mean()) if len(self.values) else 0.0

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"<BandwidthSeries {len(self)} samples @ {self.sample_rate:.0f} Hz>"


def average_bandwidth(trace: PacketTrace) -> float:
    """Average bandwidth in KB/s over the trace lifetime (Figure 5)."""
    if len(trace) < 2 or trace.duration == 0:
        return 0.0
    return trace.total_bytes / trace.duration / KB


def sliding_window_bandwidth(
    trace: PacketTrace, window: float = 0.010
) -> Tuple[np.ndarray, np.ndarray]:
    """Instantaneous average bandwidth with a window sliding one packet
    at a time (paper Figure 6).

    Returns (times, KB/s): one sample per packet, where sample *i* is the
    bytes of all packets in ``(t_i - window, t_i]`` divided by the window.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if len(trace) == 0:
        return np.empty(0), np.empty(0)
    t = trace.times
    csum = np.concatenate([[0.0], np.cumsum(trace.sizes, dtype=np.float64)])
    # index of the first packet strictly inside the window ending at t_i
    left = np.searchsorted(t, t - window, side="right")
    window_bytes = csum[np.arange(1, len(t) + 1)] - csum[left]
    return t, window_bytes / window / KB


def binned_bandwidth(
    trace: PacketTrace,
    bin_width: float = 0.010,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> BandwidthSeries:
    """Bandwidth over static bins (the power-spectrum input, §6.1).

    Every packet is assigned to the bin containing its timestamp; each
    bin's byte total divided by the bin width gives KB/s.

    With the default bounds every packet lands in a bin (``t1`` extends
    one bin past the last packet), so the series conserves the trace's
    byte total: ``sum(values) * bin_width == trace.total_bytes``.  An
    explicit ``t1`` truncates: packets at or after the last edge are
    dropped from the series, matching the paper's practice of chopping
    traces to the measurement interval.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    if len(trace) == 0:
        return BandwidthSeries(0.0, bin_width, np.empty(0))
    t = trace.times
    if t0 is None:
        t0 = float(t[0])
    if t1 is None:
        t1 = float(t[-1]) + bin_width
    n_bins = max(1, int(np.ceil((t1 - t0) / bin_width)))
    edges = t0 + bin_width * np.arange(n_bins + 1)
    totals, _ = np.histogram(t, bins=edges, weights=trace.sizes.astype(np.float64))
    return BandwidthSeries(t0, bin_width, totals / bin_width / KB)
