"""Packet-size and interarrival statistics (paper Figures 3, 4, 8, 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..capture import PacketTrace

__all__ = [
    "SummaryStats",
    "packet_size_stats",
    "interarrival_stats",
    "size_histogram",
]


@dataclass(frozen=True)
class SummaryStats:
    """Min / max / average / standard deviation, as the paper tabulates."""

    min: float
    max: float
    avg: float
    sd: float
    n: int

    @classmethod
    def of(cls, values: np.ndarray) -> "SummaryStats":
        if len(values) == 0:
            return cls(float("nan"), float("nan"), float("nan"), float("nan"), 0)
        v = np.asarray(values, dtype=np.float64)
        return cls(
            min=float(v.min()),
            max=float(v.max()),
            avg=float(v.mean()),
            sd=float(v.std()),
            n=len(v),
        )

    def row(self, ndigits: int = 1) -> tuple:
        """(min, max, avg, sd) rounded for table rendering."""
        return (
            round(self.min, ndigits),
            round(self.max, ndigits),
            round(self.avg, ndigits),
            round(self.sd, ndigits),
        )


def packet_size_stats(trace: PacketTrace) -> SummaryStats:
    """Statistics over measured packet sizes in bytes (Figures 3 and 8)."""
    return SummaryStats.of(trace.sizes)


def interarrival_stats(trace: PacketTrace) -> SummaryStats:
    """Statistics over packet interarrival times in **milliseconds**
    (Figures 4 and 9).  Requires at least two packets."""
    if len(trace) < 2:
        return SummaryStats.of(np.empty(0))
    deltas_ms = np.diff(trace.times) * 1e3
    return SummaryStats.of(deltas_ms)


def size_histogram(
    trace: PacketTrace,
    bin_width: int = 64,
    max_size: Optional[int] = None,
) -> tuple:
    """Histogram of packet sizes: (bin_edges, counts)."""
    if max_size is None:
        max_size = int(trace.sizes.max()) if len(trace) else bin_width
    edges = np.arange(0, max_size + bin_width, bin_width)
    counts, edges = np.histogram(trace.sizes, bins=edges)
    return edges, counts
