"""Packet-size modality detection.

The paper remarks that for several kernels (2DFFT, HIST, SOR) the packet
size distribution is *trimodal*: full 1518-byte segments, one remainder
size, and 58-byte ACKs.  :func:`size_modes` finds the distinct modes of a
size distribution; :func:`is_trimodal` is the paper's check.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..capture import PacketTrace

__all__ = ["size_modes", "is_trimodal", "mode_fractions"]


def size_modes(
    trace: PacketTrace,
    min_fraction: float = 0.02,
    merge_within: int = 48,
) -> List[Tuple[int, int]]:
    """Distinct packet-size modes as (size, count), by descending count.

    Exact sizes carrying at least ``min_fraction`` of the packets are
    kept; sizes closer than ``merge_within`` bytes merge into the larger
    mode (TCP remainders jitter by a few header bytes).
    """
    if len(trace) == 0:
        return []
    sizes, counts = np.unique(trace.sizes, return_counts=True)
    threshold = max(1, int(min_fraction * len(trace)))
    keep = counts >= threshold
    sizes, counts = sizes[keep], counts[keep]
    order = np.argsort(counts)[::-1]
    modes: List[Tuple[int, int]] = []
    for i in order:
        s, c = int(sizes[i]), int(counts[i])
        merged = False
        for j, (ms, mc) in enumerate(modes):
            if abs(ms - s) <= merge_within:
                modes[j] = (ms, mc + c)
                merged = True
                break
        if not merged:
            modes.append((s, c))
    modes.sort(key=lambda m: m[1], reverse=True)
    return modes


def is_trimodal(trace: PacketTrace, min_fraction: float = 0.02) -> bool:
    """True when the size distribution has exactly three modes and they
    look like (ACK, remainder, full segment)."""
    modes = size_modes(trace, min_fraction=min_fraction)
    if len(modes) != 3:
        return False
    sizes = sorted(s for s, _ in modes)
    has_ack = sizes[0] <= 90
    has_full = sizes[2] >= 1400
    has_mid = 90 < sizes[1] < 1400
    return has_ack and has_mid and has_full


def mode_fractions(trace: PacketTrace, min_fraction: float = 0.02):
    """The modes of :func:`size_modes` with packet-count fractions."""
    modes = size_modes(trace, min_fraction=min_fraction)
    n = max(1, len(trace))
    return [(s, c / n) for s, c in modes]
