"""Trace analysis: statistics, bandwidth estimators, spectra, modality."""

from .connections import active_connections, connection_table, traffic_matrix
from .bandwidth import (
    BandwidthSeries,
    average_bandwidth,
    binned_bandwidth,
    sliding_window_bandwidth,
)
from .hurst import hurst_aggregated_variance, hurst_rs
from .modality import is_trimodal, mode_fractions, size_modes
from .periodicity import autocorrelation, dominant_period, periodicity_strength
from .spectrogram import Spectrogram, spectrogram
from .spectral import (
    Spectrum,
    find_peaks,
    fundamental_frequency,
    harmonic_energy_ratio,
    power_spectrum,
    spectral_concentration,
    spectral_flatness,
)
from .stats import (
    SummaryStats,
    interarrival_stats,
    packet_size_stats,
    size_histogram,
)

__all__ = [
    "SummaryStats",
    "packet_size_stats",
    "interarrival_stats",
    "size_histogram",
    "BandwidthSeries",
    "average_bandwidth",
    "sliding_window_bandwidth",
    "binned_bandwidth",
    "Spectrum",
    "power_spectrum",
    "find_peaks",
    "fundamental_frequency",
    "spectral_flatness",
    "spectral_concentration",
    "harmonic_energy_ratio",
    "size_modes",
    "is_trimodal",
    "mode_fractions",
    "hurst_aggregated_variance",
    "hurst_rs",
    "autocorrelation",
    "dominant_period",
    "periodicity_strength",
    "Spectrogram",
    "spectrogram",
    "traffic_matrix",
    "connection_table",
    "active_connections",
]
