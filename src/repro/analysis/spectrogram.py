"""Short-time spectral analysis: spectrograms of bandwidth signals.

A single whole-trace periodogram (paper Figures 7/11) shows *which*
periodicities exist; a spectrogram shows *when* — e.g. AIRSHED's
transport-scale comb appears only inside each hour's bursty window,
while the hour-scale line persists.  Used by the AIRSHED study example
and the multi-scale tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .bandwidth import BandwidthSeries

__all__ = ["Spectrogram", "spectrogram"]


@dataclass
class Spectrogram:
    """A time-frequency power map."""

    times: np.ndarray   # window centres (s)
    freqs: np.ndarray   # Hz
    power: np.ndarray   # shape (len(freqs), len(times))

    def band_power(self, f0: float, f1: float) -> np.ndarray:
        """Total power in [f0, f1) per window — one time series."""
        mask = (self.freqs >= f0) & (self.freqs < f1)
        return self.power[mask].sum(axis=0)

    def __repr__(self):  # pragma: no cover - cosmetic
        return (
            f"<Spectrogram {len(self.freqs)} freqs x {len(self.times)} windows>"
        )


def spectrogram(
    series: BandwidthSeries,
    window: float,
    overlap: float = 0.5,
    detrend: bool = True,
) -> Spectrogram:
    """Sliding-window periodograms of a bandwidth series.

    Parameters
    ----------
    window:
        Window length in seconds.
    overlap:
        Fractional overlap between consecutive windows, in [0, 1).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if not 0 <= overlap < 1:
        raise ValueError(f"overlap must be in [0,1), got {overlap}")
    x = series.values.astype(np.float64)
    w = int(round(window / series.dt))
    if w < 4:
        raise ValueError(f"window of {w} samples is too short")
    if w > len(x):
        raise ValueError(
            f"window ({w} samples) longer than the series ({len(x)})"
        )
    step = max(1, int(round(w * (1 - overlap))))
    starts = np.arange(0, len(x) - w + 1, step)
    freqs = np.fft.rfftfreq(w, d=series.dt)
    power = np.empty((len(freqs), len(starts)))
    hann = np.hanning(w)
    for j, s0 in enumerate(starts):
        seg = x[s0:s0 + w]
        if detrend:
            seg = seg - seg.mean()
        spec = np.fft.rfft(seg * hann)
        power[:, j] = (np.abs(spec) ** 2) / w
    times = series.t0 + (starts + w / 2) * series.dt
    return Spectrogram(times=times, freqs=freqs, power=power)
