"""Power spectra of bandwidth signals (paper Figures 7 and 11).

The paper computes the periodogram of the 10 ms-binned instantaneous
bandwidth over the whole trace and reads the program's periodicities off
its spikes.  :func:`power_spectrum` reproduces that; the helpers find
spikes and fundamentals and quantify how "spiky" (sparse) a spectrum is
— the property that makes the truncated-Fourier traffic model of
:mod:`repro.core.spectral_model` work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .bandwidth import BandwidthSeries

__all__ = [
    "Spectrum",
    "power_spectrum",
    "find_peaks",
    "fundamental_frequency",
    "spectral_flatness",
    "spectral_concentration",
    "harmonic_energy_ratio",
]


@dataclass
class Spectrum:
    """A one-sided power spectrum."""

    freqs: np.ndarray   # Hz, starting at 0 (DC)
    power: np.ndarray   # (KB/s)^2 per bin, paper-style periodogram
    sample_rate: float

    def __post_init__(self):
        if len(self.freqs) != len(self.power):
            raise ValueError("freqs and power must have equal length")

    def __len__(self) -> int:
        return len(self.freqs)

    @property
    def resolution(self) -> float:
        """Frequency spacing in Hz."""
        return float(self.freqs[1] - self.freqs[0]) if len(self.freqs) > 1 else 0.0

    def band(self, f0: float, f1: float) -> "Spectrum":
        """The sub-spectrum with f0 <= f < f1."""
        mask = (self.freqs >= f0) & (self.freqs < f1)
        return Spectrum(self.freqs[mask], self.power[mask], self.sample_rate)

    def without_dc(self) -> "Spectrum":
        return Spectrum(self.freqs[1:], self.power[1:], self.sample_rate)

    def total_power(self) -> float:
        return float(self.power.sum())


def power_spectrum(series: BandwidthSeries, detrend: bool = True) -> Spectrum:
    """Periodogram of a binned-bandwidth series.

    ``detrend`` removes the mean (the DC spike would otherwise dominate
    every plot); the DC bin then carries ~0 and the paper's harmonic
    structure stands out.
    """
    x = series.values.astype(np.float64)
    n = len(x)
    if n < 2:
        raise ValueError("need at least 2 samples for a spectrum")
    if detrend:
        x = x - x.mean()
    spec = np.fft.rfft(x)
    power = (np.abs(spec) ** 2) / n
    freqs = np.fft.rfftfreq(n, d=series.dt)
    return Spectrum(freqs, power, series.sample_rate)


def find_peaks(
    spectrum: Spectrum,
    k: Optional[int] = None,
    min_prominence: float = 0.05,
    exclude_dc: bool = True,
) -> List[Tuple[float, float]]:
    """Spectral spikes as (frequency, power), strongest first.

    A bin is a peak when it is a local maximum and its power is at least
    ``min_prominence`` times the strongest non-DC bin.  ``k`` limits the
    count.
    """
    freqs, power = spectrum.freqs, spectrum.power
    start = 1 if exclude_dc else 0
    if len(power) - start < 3:
        return []
    p = power[start:]
    f = freqs[start:]
    interior = np.arange(1, len(p) - 1)
    is_max = (p[interior] >= p[interior - 1]) & (p[interior] > p[interior + 1])
    candidates = interior[is_max]
    if len(candidates) == 0:
        return []
    threshold = min_prominence * p.max()
    candidates = candidates[p[candidates] >= threshold]
    order = np.argsort(p[candidates])[::-1]
    peaks = [(float(f[i]), float(p[i])) for i in candidates[order]]
    return peaks[:k] if k is not None else peaks


def fundamental_frequency(
    spectrum: Spectrum,
    n_harmonics: int = 4,
    max_freq: Optional[float] = None,
) -> float:
    """Estimate the fundamental by harmonic summation.

    For each candidate peak frequency, sum the power at its first
    ``n_harmonics`` integer multiples; the candidate with the largest
    harmonic sum wins.  Robust against the common failure of picking a
    strong second harmonic.
    """
    peaks = find_peaks(spectrum, k=12)
    if not peaks:
        return 0.0
    freqs, power = spectrum.freqs, spectrum.power
    df = spectrum.resolution
    if df == 0:
        return peaks[0][0]
    best_f, best_score = 0.0, -1.0
    # Candidates below ~3 spectral bins correspond to fewer than three
    # periods in the whole trace — trace-length artifacts, not program
    # periodicity.
    min_freq = 3 * df
    for f0, _p in peaks:
        if f0 < min_freq or (max_freq is not None and f0 > max_freq):
            continue
        score = 0.0
        for h in range(1, n_harmonics + 1):
            idx = int(round(h * f0 / df))
            if 0 < idx < len(power):
                lo, hi = max(1, idx - 1), min(len(power), idx + 2)
                score += power[lo:hi].max()
        # prefer lower fundamentals on near-ties (sub-harmonic ambiguity)
        if score > best_score * 1.05:
            best_f, best_score = f0, score
    return best_f


def spectral_flatness(spectrum: Spectrum) -> float:
    """Geometric / arithmetic mean power ratio in (0, 1].

    Near 1 for white noise (Poisson traffic), near 0 for the spiky
    line spectra of the Fx programs.
    """
    p = spectrum.without_dc().power
    p = p[p > 0]
    if len(p) == 0:
        return 1.0
    log_gm = np.mean(np.log(p))
    am = np.mean(p)
    return float(np.exp(log_gm) / am)


def spectral_concentration(spectrum: Spectrum, k: int = 20) -> float:
    """Fraction of total (non-DC) power in the ``k`` strongest bins.

    The paper's "sparse and spiky" observation, quantified: Fx programs
    concentrate most bandwidth variance in a handful of bins.
    """
    p = spectrum.without_dc().power
    if len(p) == 0:
        return 0.0
    total = p.sum()
    if total == 0:
        return 0.0
    top = np.sort(p)[::-1][:k]
    return float(top.sum() / total)


def harmonic_energy_ratio(spectrum: Spectrum, f0: float, n_harmonics: int = 10,
                          tol_bins: int = 1) -> float:
    """Fraction of non-DC power within ``tol_bins`` of multiples of f0."""
    sp = spectrum.without_dc()
    if len(sp.power) == 0 or f0 <= 0 or sp.resolution == 0:
        return 0.0
    total = sp.power.sum()
    if total == 0:
        return 0.0
    df = spectrum.resolution
    covered = np.zeros(len(spectrum.power), dtype=bool)
    for h in range(1, n_harmonics + 1):
        idx = int(round(h * f0 / df))
        lo = max(1, idx - tol_bins)
        hi = min(len(spectrum.power), idx + tol_bins + 1)
        if lo < hi:
            covered[lo:hi] = True
    return float(spectrum.power[covered].sum() / total)
