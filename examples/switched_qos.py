#!/usr/bin/env python
"""QoS guarantees on a next-generation LAN, end to end.

The paper's opening motivation: ATM-class LANs "will supply quality of
service guarantees for connections.  Parallel programs may be able to
benefit from such guarantees."  This example runs 2DFFT under a
link-saturating UDP flood on three networks — the paper's shared
Ethernet, a best-effort switch, and the same switch with per-flow
token-bucket reservations — and shows the reservation holding the
program's burst interval steady.

Run:  python examples/switched_qos.py
"""

from repro.fx import FxCluster, FxRuntime
from repro.harness import format_table
from repro.programs import make_program, work_model_for

VICTIMS = [0, 1, 2, 3]
ITERS = 6


def flood(cluster, src_host, dst_host):
    """Saturate dst_host's link with best-effort UDP."""
    sock = cluster.stacks[src_host].udp_socket()

    def pump(sim):
        while True:
            sock.sendto(1472, dst_host=dst_host, dst_port=9)
            yield sim.timeout(1472 * 8 / 10e6)

    cluster.sim.process(pump(cluster.sim))


def run(medium: str, with_flood: bool, with_reservation: bool):
    cluster = FxCluster(n_machines=9, seed=0, medium=medium)
    if with_reservation:
        for s in VICTIMS:
            for d in VICTIMS:
                if s != d:
                    cluster.bus.reserve(s, d, rate_bps=3e6)
    runtime = FxRuntime(cluster, 4, work_model_for("2dfft", 0),
                        machines=VICTIMS)
    procs = runtime.launch(make_program("2dfft"), iterations=ITERS)
    if with_flood:
        for i, victim in enumerate(VICTIMS):
            flood(cluster, 4 + i, victim)
    cluster.sim.run(until=cluster.sim.all_of(procs))
    victim_trace = cluster.trace().subset(VICTIMS)
    return victim_trace.duration / (ITERS - 1)


def main():
    print("Running 2DFFT under a link-saturating UDP flood on three "
          "networks...\n(each scenario simulates a full 6-iteration run)\n")
    scenarios = [
        ("shared Ethernet, quiet", "ethernet", False, False),
        ("shared Ethernet + flood", "ethernet", True, False),
        ("switched LAN + flood, best-effort", "switched", True, False),
        ("switched LAN + flood, 3 Mb/s reserved per flow", "switched", True, True),
    ]
    rows = []
    for label, medium, fl, res in scenarios:
        period = run(medium, fl, res)
        rows.append((label, round(period, 2)))
        print(f"  done: {label}")
    print()
    print(
        format_table(
            ["Scenario", "2DFFT iteration period (s)"],
            rows,
            "The paper's QoS vision, realized",
        )
    )
    print(
        "\nOn the shared medium the flood starves the program; a plain\n"
        "switch helps but best-effort queueing still inflates the burst\n"
        "interval; per-flow reservations restore it. This is exactly the\n"
        "service the [l(), b(), c] negotiation of examples/qos_negotiation.py\n"
        "would request."
    )


if __name__ == "__main__":
    main()
