#!/usr/bin/env python
"""Intentionally broken SPMD programs — commlint's true-positive fixtures.

Each class below compiles and *looks* plausible, but its communication
schedule is wrong in a way ``repro xray`` must catch statically:

* :class:`DeadlockRing` — every rank receives from its left neighbour
  before sending right, so nobody's send is ever reached: a cyclic
  synchronous wait (``COMM001``).
* :class:`TagMismatch` — the receiver filters on a tag the sender never
  uses, stranding both sides (``COMM003`` on the receive, ``COMM002``
  on the orphaned send).

Neither is registered in :mod:`repro.programs` — they exist only as
fixtures, addressed by path::

    python -m repro xray examples/broken_programs.py:DeadlockRing --nprocs 4

Running them through the live simulator would stall forever; the static
checker is the only safe way to look at them, which is the point.

Run:  python examples/broken_programs.py
"""

from repro.commlint import format_commprint, xray
from repro.fx import FxProgram, Pattern


class DeadlockRing(FxProgram):
    """A ring exchange written receive-first: a classic SPMD deadlock.

    The correct ring (see ``examples/custom_kernel.py``) sends before
    receiving.  Here every rank blocks on ``recv(left)`` while its own
    send — the one that would release its right neighbour — sits
    unreached after the receive.  The wait-for graph is the full ring:
    0 -> P-1 -> P-2 -> ... -> 0.
    """

    name = "deadlock-ring"
    pattern = Pattern.NEIGHBOR

    def __init__(self, block_bytes: int = 4096, work: float = 1000.0):
        self.block_bytes = block_bytes
        self.work = work

    def rank_body(self, ctx):
        right = (ctx.rank + 1) % ctx.nprocs
        left = (ctx.rank - 1) % ctx.nprocs
        yield ctx.compute(self.work)
        yield ctx.recv(left, tag=0)          # blocks forever: left is
        yield from ctx.send(right, self.block_bytes, tag=0)  # never sent


class TagMismatch(FxProgram):
    """A pairwise exchange whose tags disagree.

    Even ranks send to their odd partner with ``tag=1``; the partner
    waits for ``tag=2``.  The message is delivered to the partner's
    mailbox but can never match the receive's filter, so the receiver
    stalls with the payload sitting in front of it — the signature
    commlint reports as a tag mismatch rather than a missing send.
    """

    name = "tag-mismatch"
    pattern = Pattern.NEIGHBOR

    def __init__(self, block_bytes: int = 2048):
        self.block_bytes = block_bytes

    def rank_body(self, ctx):
        partner = ctx.rank ^ 1
        if partner >= ctx.nprocs:  # odd P: the last rank sits out
            return
        if ctx.rank % 2 == 0:
            yield from ctx.send(partner, self.block_bytes, tag=1)
        else:
            yield ctx.recv(partner, tag=2)   # sender used tag=1


def main():
    print("Dry-running the broken fixtures (no simulator, no network):")
    for cls in (DeadlockRing, TagMismatch):
        result = xray(cls(), nprocs=4, iterations=1)
        print()
        print(format_commprint(result.manifest))
        print(f"findings for {cls.__name__}:")
        for finding in result.findings:
            print(f"  {finding.location()}: {finding.rule} {finding.message}")
        assert not result.clean, f"{cls.__name__} should not lint clean"


if __name__ == "__main__":
    main()
