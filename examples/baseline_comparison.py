#!/usr/bin/env python
"""Parallel-program traffic vs. the classical traffic models.

The paper's opening claim: the traffic of compiler-parallelized programs
"is profoundly different from typical network traffic".  This example
generates four classical sources — Poisson, on-off (MMPP), self-similar
fGn (the measured character of VBR video), and a frame-rate VBR video
source — measures two Fx kernels, and compares them on the axes that
matter: spectral shape (flat vs. line spectrum), long-range dependence
(Hurst), burst-size constancy, and cross-connection correlation.

Run:  python examples/baseline_comparison.py
"""

from repro.analysis import (
    binned_bandwidth,
    hurst_aggregated_variance,
    power_spectrum,
    spectral_concentration,
    spectral_flatness,
)
from repro.baselines import (
    OnOffTraffic,
    PoissonTraffic,
    SelfSimilarTraffic,
    VbrVideoTraffic,
)
from repro.core import burst_size_constancy, connection_correlation
from repro.harness import format_table
from repro.programs import run_measured


def characterize(label, trace):
    series = binned_bandwidth(trace, 0.010)
    spec = power_spectrum(series)
    coarse = binned_bandwidth(trace, 0.050)
    try:
        hurst = hurst_aggregated_variance(coarse.values)
    except ValueError:
        hurst = float("nan")
    return (
        label,
        round(spectral_flatness(spec), 3),
        round(spectral_concentration(spec, k=20), 2),
        round(hurst, 2),
        round(burst_size_constancy(trace), 2),
    )


def main():
    duration = 60.0
    print("Generating classical sources and measuring Fx kernels...\n")
    rows = [
        characterize("Poisson", PoissonTraffic(rate=1500, seed=0).generate(duration)),
        characterize("On-off (MMPP)", OnOffTraffic(seed=0).generate(duration)),
        characterize("Self-similar fGn", SelfSimilarTraffic(seed=0).generate(duration)),
        characterize("VBR video 30fps", VbrVideoTraffic(seed=0).generate(duration)),
        characterize("2DFFT (Fx)", run_measured("2dfft", scale="default", seed=0)),
        characterize("HIST (Fx)", run_measured("hist", scale="default", seed=0)),
    ]
    print(
        format_table(
            ["Source", "Spectral flatness", "Top-20 power frac",
             "Hurst", "Burst CoV"],
            rows,
            "Traffic character",
        )
    )
    hist_trace = run_measured("hist", scale="default", seed=0)
    rho = connection_correlation(hist_trace)
    print(f"\nHIST cross-connection correlation: {rho:.2f} "
          "(synchronized phases -> correlated connections; a Poisson\n"
          "source's connections would be independent)")
    print(
        "\nReading the table:\n"
        " * Poisson is spectrally flat; the Fx kernels are line spectra\n"
        "   (low flatness, high top-20 concentration).\n"
        " * The media-like sources keep Hurst well above 0.5 (long-range\n"
        "   dependence); the Fx kernels do not - their variability is\n"
        "   periodic, not fractal.\n"
        " * HIST's burst sizes are nearly constant (CoV ~ 0.1), known at\n"
        "   compile time - the basis of the paper's QoS proposal."
    )


if __name__ == "__main__":
    main()
