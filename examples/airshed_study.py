#!/usr/bin/env python
"""AIRSHED: multi-timescale traffic of a real scientific application.

The air-quality model skeleton (paper §3.2/§6.2) is periodic over
*three* time scales — the simulation hour, the chemistry step, and the
horizontal transport phase.  This example runs the skeleton, segments
its bursts, and locates all three spectral peak families of Figure 11.

Run:  python examples/airshed_study.py
"""

from repro.analysis import (
    average_bandwidth,
    binned_bandwidth,
    find_peaks,
    interarrival_stats,
    power_spectrum,
)
from repro.core import burst_size_constancy, find_bursts
from repro.harness import format_table
from repro.programs import run_measured


def main():
    hours = 12
    print(f"Simulating {hours} AIRSHED hours "
          "(s=35 species, p=1024 grid points, l=4 layers, k=5 steps)...")
    trace = run_measured("airshed", scale="default", seed=0)
    print(f"{len(trace)} packets over {trace.duration:.0f} s\n")

    print(f"Average bandwidth: {average_bandwidth(trace):.1f} KB/s "
          "(paper: 32.7 KB/s)")
    inter = interarrival_stats(trace)
    print(f"Max interarrival: {inter.max:.0f} ms "
          "(preprocessing gaps; paper: 23449 ms)\n")

    # -- burst structure: 2 transposes x 5 steps per hour -----------------
    bursts = find_bursts(trace, gap=1.0)
    per_hour = len(bursts) / hours
    cov = burst_size_constancy(trace, gap=1.0)
    print(f"Bursts found: {len(bursts)} (~{per_hour:.1f}/hour; "
          "10 transposes per hour expected)")
    print(f"Burst size coefficient of variation: {cov:.2f} "
          "(constant burst sizes)\n")

    # -- the three spectral peak families ----------------------------------
    spec = power_spectrum(binned_bandwidth(trace, 0.010))
    bands = [
        ("simulation hour", 0.005, 0.05, "~0.015 Hz"),
        ("chemistry step", 0.1, 0.4, "~0.2 Hz"),
        ("horizontal transport", 0.8, 8.0, "~5 Hz"),
    ]
    rows = []
    for label, f0, f1, paper in bands:
        sub = spec.band(f0, f1)
        peaks = find_peaks(sub, k=1, min_prominence=0.0)
        peak = peaks[0][0] if peaks else float("nan")
        rows.append((label, f"{f0}-{f1}", round(peak, 4), paper))
    print(
        format_table(
            ["Time scale", "Band (Hz)", "Measured peak (Hz)", "Paper"],
            rows,
            "Figure 11: three periodicities",
        )
    )


if __name__ == "__main__":
    main()
