#!/usr/bin/env python
"""QoS negotiation (paper §7.3): the network picks your processor count.

A SPMD program characterizes its traffic as [l(), b(), c]; the network,
knowing its capacity and commitments, returns the P that minimizes the
burst interval t_bi = l(P) + rounds * b(P)/B.  This example negotiates
for every kernel, then shows how admitting a bandwidth-hungry video
stream changes the answers.

Run:  python examples/qos_negotiation.py
"""

from repro.core import Network, characterize_program
from repro.harness import format_table
from repro.programs import CALIBRATIONS, KERNELS, make_program

CANDIDATES = (2, 4, 8, 16, 32)


def negotiate_all(net, title):
    rows = []
    for name in KERNELS:
        program = make_program(name)
        char = characterize_program(program, CALIBRATIONS[name].work_rate)
        result = net.negotiate(char, CANDIDATES)
        best = result.chosen
        rows.append(
            (
                name.upper(),
                str(char.pattern),
                best.nprocs,
                round(best.burst_bandwidth / 1024, 1),
                round(best.burst_interval * 1e3, 1),
            )
        )
    print(
        format_table(
            ["Program", "Pattern", "Chosen P", "B (KB/s)", "t_bi (ms)"],
            rows,
            title,
        )
    )
    print()


def main():
    print("=== Negotiation on an idle 10 Mb/s Ethernet ===\n")
    net = Network(capacity=1.25e6)
    negotiate_all(net, "Idle network")

    print("=== After admitting an 800 KB/s video stream ===\n")
    busy = Network(capacity=1.25e6)
    busy.commit("vbr-video", 800e3)
    negotiate_all(busy, "Congested network (800 KB/s committed)")

    # -- the trade-off curve for one program -----------------------------
    program = make_program("2dfft")
    char = characterize_program(program, CALIBRATIONS["2dfft"].work_rate)
    result = Network(capacity=1.25e6).negotiate(char, CANDIDATES)
    rows = [
        (
            p.nprocs,
            p.active_connections,
            round(p.burst_bandwidth / 1024, 1),
            round(p.burst_length * 1e3, 2),
            round(p.burst_interval * 1e3, 1),
            "<- chosen" if p.nprocs == result.nprocs else "",
        )
        for p in result.curve
    ]
    print(
        format_table(
            ["P", "Active conns", "B (KB/s)", "t_b (ms)", "t_bi (ms)", ""],
            rows,
            "2DFFT trade-off: compute shrinks with P, contention grows",
        )
    )


if __name__ == "__main__":
    main()
