#!/usr/bin/env python
"""Quickstart: measure one compiler-parallelized program's traffic.

Reproduces the paper's basic methodology in a few lines: run the 2DFFT
kernel (all-to-all pattern) on a simulated 4-workstation Ethernet
cluster, capture every packet promiscuously, and print the statistics of
paper Figures 3-5 plus the spectral peaks of Figure 7.

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    average_bandwidth,
    binned_bandwidth,
    find_peaks,
    fundamental_frequency,
    interarrival_stats,
    packet_size_stats,
    power_spectrum,
)
from repro.harness import format_table
from repro.programs import run_measured


def main():
    print("Running 2DFFT (N=512, P=4) on a simulated 10 Mb/s Ethernet...")
    trace = run_measured("2dfft", scale="default", seed=0)
    print(f"Captured {len(trace)} packets over {trace.duration:.1f} s\n")

    size = packet_size_stats(trace)
    inter = interarrival_stats(trace)
    print(
        format_table(
            ["Statistic", "Min", "Max", "Avg", "SD"],
            [
                ("Packet size (B)",) + size.row(),
                ("Interarrival (ms)",) + inter.row(),
            ],
            "Aggregate traffic (paper Figures 3-4)",
        )
    )

    print(f"\nAverage bandwidth: {average_bandwidth(trace):.1f} KB/s "
          "(paper Figure 5: 754.8 KB/s)")

    conn = trace.connection(1, 2)
    conn_bw = conn.total_bytes / trace.duration / 1024
    print(f"Representative connection (alpha1 -> alpha2): {conn_bw:.1f} KB/s "
          "(paper: 63.2 KB/s)")

    series = binned_bandwidth(trace, bin_width=0.010)
    spec = power_spectrum(series)
    f0 = fundamental_frequency(spec)
    print(f"\nSpectral fundamental: {f0:.2f} Hz (paper Figure 7: ~0.5 Hz)")
    print("Strongest spectral peaks:")
    for freq, power in find_peaks(spec, k=5):
        print(f"  {freq:6.2f} Hz   power {power:.3g}")


if __name__ == "__main__":
    main()
