#!/usr/bin/env python
"""Spectral traffic modeling: the paper's §7.2 workflow, end to end.

1. Measure a kernel's traffic and bin its bandwidth at 10 ms.
2. Fit a truncated-Fourier :class:`SpectralModel` — the paper's "choose
   the spike a_k's with the greatest magnitude".
3. Show the approximation converging as spikes are added.
4. Generate *synthetic* traffic from the model and verify its bandwidth
   matches — the paper's "analytic models to generate similar traffic".

Run:  python examples/spectral_modeling.py
"""

import numpy as np

from repro.analysis import binned_bandwidth
from repro.core import SpectralModel, SpectralTrafficGenerator, series_nrmse
from repro.harness import format_table
from repro.programs import run_measured


def main():
    print("Measuring HIST (tree pattern, 5 Hz fundamental)...")
    trace = run_measured("hist", scale="default", seed=0)
    series = binned_bandwidth(trace, bin_width=0.010)
    print(f"{len(trace)} packets, {len(series)} bandwidth samples\n")

    # -- convergence of the truncated Fourier series --------------------
    full = SpectralModel.fit(series, n_spikes=200)
    rows = []
    for k in (1, 2, 5, 10, 20, 50, 100, 200):
        model = full.truncated(k)
        rows.append((k, round(model.error(series), 4)))
    print(
        format_table(
            ["Spikes kept", "NRMSE"],
            rows,
            "Truncated-Fourier reconstruction error (paper §7.2)",
        )
    )

    model = full.truncated(50)
    print(f"\nFitted model: {model}")
    print("Strongest retained spikes:")
    for s in model.spikes[:5]:
        print(f"  {s.freq:6.2f} Hz  amplitude {s.amplitude:8.2f} KB/s  "
              f"phase {s.phase:+.2f} rad")

    # -- generate similar traffic ----------------------------------------
    duration = min(20.0, series.duration)
    gen = SpectralTrafficGenerator(model)
    synth = gen.generate(duration=duration, dt=0.010, t0=series.t0)
    print(f"\nGenerated {len(synth)} synthetic packets over {duration:.0f} s")

    got = binned_bandwidth(synth, 0.1, t0=series.t0, t1=series.t0 + duration)
    fine_t = series.t0 + 0.010 * np.arange(int(duration / 0.010)) + 0.005
    fine = np.maximum(model.reconstruct(fine_t), 0.0)
    n = min(len(fine) // 10, len(got.values))
    want = fine[: n * 10].reshape(n, 10).mean(axis=1)
    err = series_nrmse(np.maximum(want, 1e-9), got.values[:n])
    print(f"Synthetic bandwidth vs model (bin-averaged NRMSE): {err:.3f}")

    orig_mean = series.values.mean()
    synth_mean = got.values.mean()
    print(f"Mean bandwidth:   measured {orig_mean:7.1f} KB/s   "
          f"synthetic {synth_mean:7.1f} KB/s")


if __name__ == "__main__":
    main()
