#!/usr/bin/env python
"""Two parallel programs sharing one Ethernet.

The paper's QoS discussion (§7.3/§8) hinges on the burst interval being
a property of the program *and* the network: "the periodicity is
determined by application parameters and the network itself".  Here two
four-processor programs run on disjoint machines of a nine-workstation
LAN and contend for the same wire, and the communication-bound victim's
iteration period stretches measurably while a compute-bound one barely
notices.

Run:  python examples/interference.py
"""

from repro.analysis import average_bandwidth, binned_bandwidth
from repro.fx import FxCluster, FxRuntime
from repro.harness import format_table
from repro.programs import make_program, work_model_for


def run_pair(victim: str, competitor: str, co_run: bool, seed: int = 0,
             iterations: int = 8):
    """Measure the victim's per-iteration period, alone or co-running."""
    cluster = FxCluster(n_machines=9, seed=seed)
    victim_rt = FxRuntime(cluster, 4, work_model_for(victim, seed),
                          machines=[0, 1, 2, 3])
    procs = victim_rt.launch(make_program(victim), iterations=iterations)
    if co_run:
        comp_rt = FxRuntime(cluster, 4, work_model_for(competitor, seed + 100),
                            machines=[4, 5, 6, 7])
        comp_rt.launch(make_program(competitor), iterations=10_000)
    cluster.sim.run(until=cluster.sim.all_of(procs))
    trace = cluster.trace()
    victim_trace = trace.subset([0, 1, 2, 3])
    period = victim_trace.duration / (iterations - 1)
    return period, average_bandwidth(victim_trace), cluster


def main():
    rows = []
    for victim, competitor in (("2dfft", "t2dfft"), ("sor", "2dfft"),
                               ("hist", "2dfft")):
        alone, bw_alone, _ = run_pair(victim, competitor, co_run=False)
        shared, bw_shared, cluster = run_pair(victim, competitor, co_run=True)
        rows.append(
            (
                victim.upper(),
                competitor.upper(),
                round(alone, 2),
                round(shared, 2),
                f"{shared / alone:.2f}x",
                round(bw_alone, 1),
                round(bw_shared, 1),
            )
        )
    print(
        format_table(
            ["Victim", "Competitor", "Period alone (s)", "Period shared (s)",
             "Stretch", "BW alone", "BW shared (KB/s)"],
            rows,
            "Interference on a shared 10 Mb/s Ethernet",
        )
    )
    print(
        "\nThe wire-bound 2DFFT stretches substantially; the compute-bound\n"
        "SOR is nearly unaffected. This is the tension the paper's QoS\n"
        "negotiation model quantifies: the bandwidth B the network can\n"
        "commit depends on its other commitments, and the burst interval\n"
        "t_bi = W/P + N/B follows."
    )


if __name__ == "__main__":
    main()
