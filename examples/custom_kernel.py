#!/usr/bin/env python
"""Writing and measuring your own SPMD program.

Everything the six paper programs use is public API: subclass
:class:`FxProgram`, interleave ``ctx.compute`` with the collectives of
:mod:`repro.fx`, and run it through the measurement harness.  This
example builds a ring-pipeline kernel (a "shift" pattern — the example
the paper's QoS section reasons about), measures it, and checks its
periodicity.

Run:  python examples/custom_kernel.py
"""

import random

from repro.analysis import (
    average_bandwidth,
    binned_bandwidth,
    fundamental_frequency,
    packet_size_stats,
    power_spectrum,
)
from repro.core import Network, characterize_program
from repro.fx import FxCluster, FxProgram, FxRuntime, Pattern, WorkModel
from repro.harness import format_table


class RingShift(FxProgram):
    """Each rank computes, then shifts a block to its right neighbour.

    The paper's §7.3 example: "each processor generates periodic bursts
    along one of its connections (a shift pattern)".
    """

    name = "ringshift"
    pattern = Pattern.NEIGHBOR  # nearest in spirit among the figure-1 set

    def __init__(self, block_bytes: int = 65536, work: float = 400_000.0):
        self.block_bytes = block_bytes
        self.work = work

    def rank_body(self, ctx):
        right = (ctx.rank + 1) % ctx.nprocs
        left = (ctx.rank - 1) % ctx.nprocs
        yield ctx.compute(self.work)
        yield from ctx.send(right, self.block_bytes, tag=0)
        yield ctx.recv(left, tag=0)

    # QoS metadata
    def local_work(self, P: int) -> float:
        return self.work

    def burst_bytes(self, P: int) -> int:
        return self.block_bytes


def main():
    program = RingShift()
    print("Measuring the custom ring-shift kernel (P=4, 64 KB blocks)...")

    cluster = FxCluster(n_machines=5, seed=0)
    work_model = WorkModel(rate=1e6, jitter=0.01, rng=random.Random(0))
    runtime = FxRuntime(cluster, nprocs=4, work_model=work_model)
    trace = runtime.execute(program, iterations=30)

    size = packet_size_stats(trace)
    print(
        format_table(
            ["Metric", "Value"],
            [
                ("packets", len(trace)),
                ("duration (s)", round(trace.duration, 1)),
                ("bandwidth (KB/s)", round(average_bandwidth(trace), 1)),
                ("packet sizes (B)", f"{size.min:.0f}..{size.max:.0f}"),
            ],
            "Measurement",
        )
    )

    spec = power_spectrum(binned_bandwidth(trace, 0.010))
    f0 = fundamental_frequency(spec)
    # period ~ 0.4 s compute + ~0.22 s for four 64 KB blocks on the
    # shared wire -> fundamental around 1.6 Hz
    print(f"\nFundamental: {f0:.2f} Hz (expected ~1.6 Hz)")

    # the program's own QoS characterization, negotiated
    char = characterize_program(program, work_rate=1e6)
    result = Network(capacity=1.25e6).negotiate(char, candidates=(2, 4, 8, 16))
    print(f"Network suggests P = {result.nprocs} "
          f"(t_bi = {result.chosen.burst_interval * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
